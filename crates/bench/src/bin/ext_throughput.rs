//! Extension study: sustained multicast *throughput* (the paper's §5 notes
//! that tree quality depends on "the desired performance metrics, latency
//! or throughput" but only evaluates latency). The root streams `burst`
//! back-to-back messages without waiting; throughput is payload bytes
//! delivered to every destination over the makespan.

use std::sync::Mutex;
use std::sync::Arc;

use bench::{factor, par_map, CliOpts, Table};
use bytes::Bytes;
use gm::{Cluster, GmParams, HostApp, HostCtx, Notice};
use gm_sim::SimTime;
use myrinet::{Fabric, GroupId, NodeId, PortId, Topology};
use nic_mcast::{McastExt, McastNotice, McastRequest, SpanningTree, TreeShape};
use serde::Serialize;

const PORT: PortId = PortId(0);
const GID: GroupId = GroupId(1);

struct StreamRoot {
    tree: SpanningTree,
    size: usize,
    burst: u32,
    nic: bool,
}

impl HostApp<McastExt> for StreamRoot {
    fn on_start(&mut self, ctx: &mut HostCtx<'_, McastExt>) {
        if self.nic {
            ctx.ext(McastRequest::CreateGroup {
                group: GID,
                port: PORT,
                root: self.tree.root(),
                parent: None,
                children: self.tree.children(self.tree.root()).to_vec(),
            });
        } else {
            self.blast(ctx);
        }
    }
    fn on_notice(&mut self, n: Notice<McastNotice>, ctx: &mut HostCtx<'_, McastExt>) {
        if matches!(n, Notice::Ext(McastNotice::GroupReady { .. })) {
            self.blast(ctx);
        }
    }
}

impl StreamRoot {
    fn blast(&mut self, ctx: &mut HostCtx<'_, McastExt>) {
        for i in 0..self.burst {
            let data = Bytes::from(vec![(i % 251) as u8; self.size]);
            if self.nic {
                ctx.ext(McastRequest::Send {
                    group: GID,
                    data,
                    tag: i as u64,
                });
            } else {
                for &c in self.tree.children(self.tree.root()) {
                    ctx.send(c, PORT, PORT, data.clone(), i as u64);
                }
            }
        }
    }
}

struct StreamDest {
    me: NodeId,
    tree: SpanningTree,
    burst: u32,
    nic: bool,
    got: u32,
    done_at: Arc<Mutex<Vec<SimTime>>>,
}

impl HostApp<McastExt> for StreamDest {
    fn on_start(&mut self, ctx: &mut HostCtx<'_, McastExt>) {
        ctx.provide_recv(PORT, 2 * self.burst as usize);
        if self.nic {
            ctx.ext(McastRequest::CreateGroup {
                group: GID,
                port: PORT,
                root: self.tree.root(),
                parent: Some(self.tree.parent(self.me).expect("member")),
                children: self.tree.children(self.me).to_vec(),
            });
        }
    }
    fn on_notice(&mut self, n: Notice<McastNotice>, ctx: &mut HostCtx<'_, McastExt>) {
        if let Notice::Recv { tag, data, .. } = n {
            if !self.nic {
                for &c in self.tree.children(self.me) {
                    ctx.send(c, PORT, PORT, data.clone(), tag);
                }
            }
            self.got += 1;
            if self.got == self.burst {
                self.done_at.lock().expect("shared app state mutex poisoned")[self.me.idx()] = ctx.now();
            }
        }
    }
}

/// Aggregate delivered goodput in MB/s: burst*size bytes to each of n-1
/// destinations over the makespan.
fn throughput(n: u32, size: usize, burst: u32, nic: bool, shape: TreeShape) -> f64 {
    let fabric = Fabric::new(Topology::for_nodes(n), 29);
    let dests: Vec<NodeId> = (1..n).map(NodeId).collect();
    let tree = SpanningTree::build(NodeId(0), &dests, shape);
    let done_at = Arc::new(Mutex::new(vec![SimTime::ZERO; n as usize]));
    let mut cluster = Cluster::new(GmParams::default(), fabric, |_| McastExt::new());
    cluster.set_app(
        NodeId(0),
        Box::new(StreamRoot {
            tree: tree.clone(),
            size,
            burst,
            nic,
        }),
    );
    for &d in &dests {
        cluster.set_app(
            d,
            Box::new(StreamDest {
                me: d,
                tree: tree.clone(),
                burst,
                nic,
                got: 0,
                done_at: done_at.clone(),
            }),
        );
    }
    let mut eng = cluster.into_engine();
    let outcome = eng.run(SimTime::MAX, 2_000_000_000);
    assert_eq!(outcome, gm_sim::RunOutcome::Idle, "stream hung");
    let d = done_at.lock().expect("shared app state mutex poisoned");
    assert!(d.iter().skip(1).all(|&t| t > SimTime::ZERO), "missing deliveries");
    let makespan = d.iter().cloned().fold(SimTime::ZERO, SimTime::max);
    let bytes = burst as u64 * size as u64 * (n as u64 - 1);
    bytes as f64 / makespan.as_micros_f64() // B/us == MB/s
}

#[derive(Serialize)]
struct Point {
    nodes: u32,
    size: usize,
    hb_mbs: f64,
    nb_mbs: f64,
    improvement: f64,
}

fn main() {
    let opts = CliOpts::parse();
    let burst = opts.iters.max(20);
    let mut points = Vec::new();
    for &n in &[4u32, 8, 16] {
        for &size in &[1024usize, 4096, 16384] {
            points.push((n, size));
        }
    }
    let results: Vec<Point> = par_map(points, |&(n, size)| {
        let hb = throughput(n, size, burst, false, TreeShape::Binomial);
        // Streaming favours maximal pipelining: root egress of one copy and
        // per-packet forwarding the whole way — the chain.
        let nb_chain = throughput(n, size, burst, true, TreeShape::Chain);
        let nb_kary = throughput(n, size, burst, true, TreeShape::KAry(2));
        let nb = nb_chain.max(nb_kary);
        Point {
            nodes: n,
            size,
            hb_mbs: hb,
            nb_mbs: nb,
            improvement: nb / hb,
        }
    });
    let mut t = Table::new(
        &format!("Sustained multicast goodput, {burst}-message bursts (MB/s aggregate)"),
        &["nodes", "size", "HB MB/s", "NB MB/s", "NB/HB"],
    );
    for p in &results {
        t.row(vec![
            p.nodes.to_string(),
            p.size.to_string(),
            format!("{:.1}", p.hb_mbs),
            format!("{:.1}", p.nb_mbs),
            factor(p.nb_mbs, p.hb_mbs).to_string(),
        ]);
    }
    t.print();
    println!(
        "\nThroughput is the regime the paper left unmeasured: per-packet NIC\n\
         forwarding sustains the wire rate down the tree while host-based\n\
         forwarding re-serializes every message at every level."
    );
    bench::write_json("ext_throughput", &results);
}
