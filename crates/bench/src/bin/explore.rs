//! Interactive explorer: run one multicast configuration from the command
//! line and print everything the simulator measured.
//!
//! ```console
//! cargo run --release -p bench --bin explore -- \
//!     --nodes 16 --size 4096 --mode nic --shape adaptive --loss 0.01 --iters 50
//! ```

use gm::GmParams;
use myrinet::{FaultPlan, NetParams};
use nic_mcast::{
    execute, shape_for_size, McastMode, McastRun, PostalParams, SpanningTree, TreeShape,
};

struct Opts {
    nodes: u32,
    size: usize,
    mode: McastMode,
    shape: String,
    loss: f64,
    iters: u32,
    warmup: u32,
    seed: u64,
    show_tree: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: explore [--nodes N] [--size BYTES] [--mode nic|host] \
         [--shape adaptive|binomial|flat|chain|kary:K|postal:T_US:GAP_US] \
         [--loss P] [--iters N] [--warmup N] [--seed S] [--tree]"
    );
    std::process::exit(2)
}

fn parse() -> Opts {
    let mut o = Opts {
        nodes: 16,
        size: 1024,
        mode: McastMode::NicBased,
        shape: "adaptive".to_string(),
        loss: 0.0,
        iters: 100,
        warmup: 10,
        seed: 1,
        show_tree: false,
    };
    let args: Vec<String> = std::env::args().collect();
    let mut i = 1;
    let val = |i: &mut usize| -> String {
        *i += 1;
        args.get(*i).cloned().unwrap_or_else(|| usage())
    };
    while i < args.len() {
        match args[i].as_str() {
            "--nodes" => o.nodes = val(&mut i).parse().unwrap_or_else(|_| usage()),
            "--size" => o.size = val(&mut i).parse().unwrap_or_else(|_| usage()),
            "--mode" => {
                o.mode = match val(&mut i).as_str() {
                    "nic" => McastMode::NicBased,
                    "host" => McastMode::HostBased,
                    _ => usage(),
                }
            }
            "--shape" => o.shape = val(&mut i),
            "--loss" => o.loss = val(&mut i).parse().unwrap_or_else(|_| usage()),
            "--iters" => o.iters = val(&mut i).parse().unwrap_or_else(|_| usage()),
            "--warmup" => o.warmup = val(&mut i).parse().unwrap_or_else(|_| usage()),
            "--seed" => o.seed = val(&mut i).parse().unwrap_or_else(|_| usage()),
            "--tree" => o.show_tree = true,
            "--help" | "-h" => usage(),
            _ => usage(),
        }
        i += 1;
    }
    o
}

fn parse_shape(spec: &str, size: usize, n_dests: usize) -> TreeShape {
    match spec {
        "adaptive" => shape_for_size(
            size,
            n_dests,
            &GmParams::default(),
            &NetParams::default(),
            2,
        ),
        "binomial" => TreeShape::Binomial,
        "flat" => TreeShape::Flat,
        "chain" => TreeShape::Chain,
        other => {
            if let Some(k) = other.strip_prefix("kary:") {
                return TreeShape::KAry(k.parse().unwrap_or_else(|_| usage()));
            }
            if let Some(rest) = other.strip_prefix("postal:") {
                let mut parts = rest.split(':');
                let lat: u64 = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
                let gap: u64 = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
                return TreeShape::Postal(PostalParams::new(
                    gm_sim::SimDuration::from_micros(lat),
                    gm_sim::SimDuration::from_micros(gap),
                ));
            }
            usage()
        }
    }
}

fn print_tree(tree: &SpanningTree, node: myrinet::NodeId, depth: usize) {
    println!("{:indent$}{node}", "", indent = depth * 2);
    for &c in tree.children(node) {
        print_tree(tree, c, depth + 1);
    }
}

fn main() {
    let o = parse();
    let shape = parse_shape(&o.shape, o.size, o.nodes as usize - 1);
    let mut run = McastRun::new(o.nodes, o.size, o.mode, shape);
    run.warmup = o.warmup;
    run.iters = o.iters;
    run.seed = o.seed;
    if o.loss > 0.0 {
        run.faults = FaultPlan::with_loss(o.loss);
    }
    if o.show_tree {
        let dests: Vec<myrinet::NodeId> = (1..o.nodes).map(myrinet::NodeId).collect();
        let tree = SpanningTree::build(myrinet::NodeId(0), &dests, shape);
        println!("spanning tree ({shape:?}):");
        print_tree(&tree, myrinet::NodeId(0), 0);
        println!();
    }
    let out = execute(&run);
    println!(
        "{} multicast, {} nodes, {} bytes, shape {:?}, loss {:.2}%",
        match o.mode {
            McastMode::NicBased => "NIC-based",
            McastMode::HostBased => "host-based",
        },
        o.nodes,
        o.size,
        shape,
        o.loss * 100.0,
    );
    println!("  latency (mean):   {:>10.2} us", out.latency.mean());
    println!("  latency (p50):    {:>10.2} us", out.latency_p50);
    println!("  latency (p99):    {:>10.2} us", out.latency_p99);
    println!("  latency (stddev): {:>10.2} us", out.latency.stddev());
    println!("  tree height:      {:>10}", out.height);
    println!("  avg fan-out:      {:>10.2}", out.avg_fanout);
    println!("  retransmissions:  {:>10}", out.retransmissions);
    println!("  root link util:   {:>9.1}%", out.root_link_utilization * 100.0);
    println!("  sim events:       {:>10}", out.events);
    println!("  sim time:         {:>10}", out.end_time);
}
