//! Interactive explorer: run one multicast configuration from the command
//! line and print everything the simulator measured.
//!
//! ```console
//! cargo run --release -p bench --bin explore -- \
//!     --nodes 16 --size 4096 --mode nic --shape adaptive --loss 0.01 --iters 50
//! ```

use nic_mcast::{McastMode, PostalParams, Scenario, SpanningTree, TreeShape};

struct Opts {
    nodes: u32,
    size: usize,
    mode: McastMode,
    shape: String,
    loss: f64,
    iters: u32,
    warmup: u32,
    seed: u64,
    show_tree: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: explore [--nodes N] [--size BYTES] [--mode nic|host] \
         [--shape adaptive|binomial|flat|chain|kary:K|postal:T_US:GAP_US] \
         [--loss P] [--iters N] [--warmup N] [--seed S] [--tree]"
    );
    std::process::exit(2)
}

fn parse() -> Opts {
    let mut o = Opts {
        nodes: 16,
        size: 1024,
        mode: McastMode::NicBased,
        shape: "adaptive".to_string(),
        loss: 0.0,
        iters: 100,
        warmup: 10,
        seed: 1,
        show_tree: false,
    };
    let args: Vec<String> = std::env::args().collect();
    let mut i = 1;
    let val = |i: &mut usize| -> String {
        *i += 1;
        args.get(*i).cloned().unwrap_or_else(|| usage())
    };
    while i < args.len() {
        match args[i].as_str() {
            "--nodes" => o.nodes = val(&mut i).parse().unwrap_or_else(|_| usage()),
            "--size" => o.size = val(&mut i).parse().unwrap_or_else(|_| usage()),
            "--mode" => {
                o.mode = match val(&mut i).as_str() {
                    "nic" => McastMode::NicBased,
                    "host" => McastMode::HostBased,
                    _ => usage(),
                }
            }
            "--shape" => o.shape = val(&mut i),
            "--loss" => o.loss = val(&mut i).parse().unwrap_or_else(|_| usage()),
            "--iters" => o.iters = val(&mut i).parse().unwrap_or_else(|_| usage()),
            "--warmup" => o.warmup = val(&mut i).parse().unwrap_or_else(|_| usage()),
            "--seed" => o.seed = val(&mut i).parse().unwrap_or_else(|_| usage()),
            "--tree" => o.show_tree = true,
            "--help" | "-h" => usage(),
            _ => usage(),
        }
        i += 1;
    }
    o
}

fn parse_shape(spec: &str) -> TreeShape {
    match spec {
        "adaptive" => TreeShape::auto(),
        "binomial" => TreeShape::Binomial,
        "flat" => TreeShape::Flat,
        "chain" => TreeShape::Chain,
        other => {
            if let Some(k) = other.strip_prefix("kary:") {
                return TreeShape::KAry(k.parse().unwrap_or_else(|_| usage()));
            }
            if let Some(rest) = other.strip_prefix("postal:") {
                let mut parts = rest.split(':');
                let lat: u64 = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
                let gap: u64 = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
                return TreeShape::Postal(PostalParams::new(
                    gm_sim::SimDuration::from_micros(lat),
                    gm_sim::SimDuration::from_micros(gap),
                ));
            }
            usage()
        }
    }
}

fn print_tree(tree: &SpanningTree, node: myrinet::NodeId, depth: usize) {
    println!("{:indent$}{node}", "", indent = depth * 2);
    for &c in tree.children(node) {
        print_tree(tree, c, depth + 1);
    }
}

fn main() {
    let o = parse();
    let scenario = match o.mode {
        McastMode::NicBased => Scenario::nic_based(o.nodes),
        McastMode::HostBased => Scenario::host_based(o.nodes),
    }
    .size(o.size)
    .tree(parse_shape(&o.shape))
    .warmup(o.warmup)
    .iters(o.iters)
    .seed(o.seed)
    .loss(o.loss);
    let built = scenario.build().unwrap_or_else(|e| {
        eprintln!("invalid scenario: {e}");
        std::process::exit(2)
    });
    let shape = built.spec().shape;
    if o.show_tree {
        let tree = SpanningTree::build(built.spec().root, &built.spec().dests, shape);
        println!("spanning tree ({shape:?}):");
        print_tree(&tree, built.spec().root, 0);
        println!();
    }
    let out = built.run();
    println!(
        "{} multicast, {} nodes, {} bytes, shape {:?}, loss {:.2}%",
        match o.mode {
            McastMode::NicBased => "NIC-based",
            McastMode::HostBased => "host-based",
        },
        o.nodes,
        o.size,
        shape,
        o.loss * 100.0,
    );
    println!("  latency (mean):   {:>10.2} us", out.latency.mean());
    println!("  latency (p50):    {:>10.2} us", out.latency_p50);
    println!("  latency (p99):    {:>10.2} us", out.latency_p99);
    println!("  latency (stddev): {:>10.2} us", out.latency.stddev());
    println!("  tree height:      {:>10}", out.height);
    println!("  avg fan-out:      {:>10.2}", out.avg_fanout);
    println!("  retransmissions:  {:>10}", out.retransmissions);
    println!("  root link util:   {:>9.1}%", out.root_link_utilization * 100.0);
    println!("  sim events:       {:>10}", out.events);
    println!("  sim time:         {:>10}", out.end_time);
}
