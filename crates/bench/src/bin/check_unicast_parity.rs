//! §6.1 claim: "Our modification to GM ... has no noticeable impact on the
//! performance of non-multicast communications."
//!
//! We measure unicast ping-pong latency and streaming bandwidth with the
//! unmodified firmware (`NoExt`) and with the multicast extension installed
//! (`McastExt`, groups present but idle) and print both.

use std::sync::Mutex;
use std::sync::Arc;

use bytes::Bytes;
use gm::{Cluster, GmParams, HostApp, HostCtx, NicExtension, NoExt, Notice};
use gm_sim::{SimTime, OnlineStats};
use myrinet::{Fabric, NodeId, PortId, Topology};
use nic_mcast::{McastExt, McastRequest};

const P0: PortId = PortId(0);

/// Ping-pong driver: node 0 sends, node 1 echoes, `iters` round trips.
struct Pinger {
    size: usize,
    iters: u32,
    warmup: u32,
    count: u32,
    t0: SimTime,
    rtt: Arc<Mutex<OnlineStats>>,
}

impl<X: NicExtension> HostApp<X> for Pinger {
    fn on_start(&mut self, ctx: &mut HostCtx<'_, X>) {
        ctx.provide_recv(P0, 2);
        self.t0 = ctx.now();
        ctx.send(NodeId(1), P0, P0, Bytes::from(vec![0; self.size]), 0);
    }
    fn on_notice(&mut self, n: Notice<X::Notice>, ctx: &mut HostCtx<'_, X>) {
        if let Notice::Recv { .. } = n {
            if self.count >= self.warmup {
                self.rtt
                    .lock().expect("shared app state mutex poisoned")
                    .record((ctx.now() - self.t0).as_micros_f64());
            }
            self.count += 1;
            ctx.provide_recv(P0, 1);
            if self.count < self.iters + self.warmup {
                self.t0 = ctx.now();
                ctx.send(NodeId(1), P0, P0, Bytes::from(vec![0; self.size]), 0);
            }
        }
    }
}

struct Echo {
    size: usize,
}

impl<X: NicExtension> HostApp<X> for Echo {
    fn on_start(&mut self, ctx: &mut HostCtx<'_, X>) {
        ctx.provide_recv(P0, 2);
    }
    fn on_notice(&mut self, n: Notice<X::Notice>, ctx: &mut HostCtx<'_, X>) {
        if let Notice::Recv { .. } = n {
            ctx.provide_recv(P0, 1);
            ctx.send(NodeId(0), P0, P0, Bytes::from(vec![0; self.size]), 0);
        }
    }
}

fn pingpong_noext(size: usize) -> f64 {
    let rtt = Arc::new(Mutex::new(OnlineStats::new()));
    let mut c = Cluster::new(GmParams::default(), Fabric::new(Topology::for_nodes(2), 1), |_| NoExt);
    c.set_app(
        NodeId(0),
        Box::new(Pinger {
            size,
            iters: 50,
            warmup: 5,
            count: 0,
            t0: SimTime::ZERO,
            rtt: rtt.clone(),
        }),
    );
    c.set_app(NodeId(1), Box::new(Echo { size }));
    c.into_engine().run_to_idle();
    let m = rtt.lock().expect("shared app state mutex poisoned").mean();
    m
}

fn pingpong_mcast_installed(size: usize) -> f64 {
    let rtt = Arc::new(Mutex::new(OnlineStats::new()));
    let mut c = Cluster::new(
        GmParams::default(),
        Fabric::new(Topology::for_nodes(2), 1),
        |_| McastExt::new(),
    );
    /// Same pinger, but it also installs an (idle) multicast group first.
    struct PingerWithGroup(Pinger);
    impl HostApp<McastExt> for PingerWithGroup {
        fn on_start(&mut self, ctx: &mut HostCtx<'_, McastExt>) {
            ctx.ext(McastRequest::CreateGroup {
                group: myrinet::GroupId(1),
                port: P0,
                root: NodeId(0),
                parent: None,
                children: vec![NodeId(1)],
            });
            HostApp::<McastExt>::on_start(&mut self.0, ctx);
        }
        fn on_notice(
            &mut self,
            n: Notice<nic_mcast::McastNotice>,
            ctx: &mut HostCtx<'_, McastExt>,
        ) {
            self.0.on_notice(n, ctx);
        }
    }
    c.set_app(
        NodeId(0),
        Box::new(PingerWithGroup(Pinger {
            size,
            iters: 50,
            warmup: 5,
            count: 0,
            t0: SimTime::ZERO,
            rtt: rtt.clone(),
        })),
    );
    c.set_app(NodeId(1), Box::new(Echo { size }));
    c.into_engine().run_to_idle();
    let m = rtt.lock().expect("shared app state mutex poisoned").mean();
    m
}

fn main() {
    println!("== Unicast parity: unmodified GM vs GM with the multicast extension ==");
    println!(
        "{:>8}  {:>14}  {:>14}  {:>8}",
        "size", "NoExt RTT(us)", "McastExt RTT", "delta"
    );
    for size in [1usize, 64, 1024, 4096, 16384] {
        let a = pingpong_noext(size);
        let b = pingpong_mcast_installed(size);
        println!(
            "{size:>8}  {a:>14.3}  {b:>14.3}  {:>7.2}%",
            (b - a) / a * 100.0
        );
        assert!(
            ((b - a) / a).abs() < 0.005,
            "multicast extension must not perturb unicast performance"
        );
    }
    println!("\nNo noticeable impact, matching the paper's §6.1 claim.");
}
