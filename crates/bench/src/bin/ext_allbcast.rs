//! Extension study (paper future work): All-to-all broadcast — the other
//! collective §7 names. Every node is the root of its own multicast group
//! and all roots fire simultaneously; the metric is the makespan until
//! every node holds every other node's message.
//!
//! This is the stress case for the scheme's decentralized design: N
//! concurrent groups, every NIC simultaneously a root, a forwarder and a
//! leaf, with no central credit manager to congest (the FM/MC weakness from
//! Figure 1).

use std::sync::Mutex;
use std::sync::Arc;

use bench::{factor, par_map, us, CliOpts, Table};
use bytes::Bytes;
use gm::{Cluster, GmParams, HostApp, HostCtx, Notice};
use gm_sim::SimTime;
use myrinet::{Fabric, GroupId, NodeId, PortId, Topology};
use nic_mcast::{McastExt, McastNotice, McastRequest, SpanningTree, TreeShape};
use serde::Serialize;

const PORT: PortId = PortId(0);

fn trees(n: u32) -> Vec<SpanningTree> {
    (0..n)
        .map(|r| {
            let dests: Vec<NodeId> = (0..n).filter(|&x| x != r).map(NodeId).collect();
            SpanningTree::build(NodeId(r), &dests, TreeShape::Binomial)
        })
        .collect()
}

/// `completion[node]` = time the node held all n-1 foreign messages.
type Completion = Arc<Mutex<Vec<SimTime>>>;

struct NbAll {
    me: NodeId,
    n: u32,
    size: usize,
    trees: Arc<Vec<SpanningTree>>,
    ready: u32,
    got: u32,
    done: Completion,
}

impl HostApp<McastExt> for NbAll {
    fn on_start(&mut self, ctx: &mut HostCtx<'_, McastExt>) {
        ctx.provide_recv(PORT, 4 * self.n as usize);
        for r in 0..self.n {
            let tree = &self.trees[r as usize];
            ctx.ext(McastRequest::CreateGroup {
                group: GroupId(r),
                port: PORT,
                root: NodeId(r),
                parent: tree.parent(self.me),
                children: tree.children(self.me).to_vec(),
            });
        }
    }
    fn on_notice(&mut self, n: Notice<McastNotice>, ctx: &mut HostCtx<'_, McastExt>) {
        match n {
            Notice::Ext(McastNotice::GroupReady { .. }) => {
                self.ready += 1;
                if self.ready == self.n {
                    ctx.ext(McastRequest::Send {
                        group: GroupId(self.me.0),
                        data: Bytes::from(vec![self.me.0 as u8; self.size]),
                        tag: self.me.0 as u64,
                    });
                }
            }
            Notice::Recv { tag, data, .. } => {
                ctx.provide_recv(PORT, 1);
                assert_eq!(data.len(), self.size);
                assert!(data.iter().all(|&b| b == tag as u8));
                self.got += 1;
                if self.got == self.n - 1 {
                    self.done.lock().expect("shared app state mutex poisoned")[self.me.idx()] = ctx.now();
                }
            }
            _ => {}
        }
    }
}

struct HbAll {
    me: NodeId,
    n: u32,
    size: usize,
    trees: Arc<Vec<SpanningTree>>,
    got: u32,
    done: Completion,
}

impl HbAll {
    fn forward(&self, ctx: &mut HostCtx<'_, McastExt>, root: u32, data: &Bytes) {
        for &c in self.trees[root as usize].children(self.me) {
            ctx.send(c, PORT, PORT, data.clone(), root as u64);
        }
    }
}

impl HostApp<McastExt> for HbAll {
    fn on_start(&mut self, ctx: &mut HostCtx<'_, McastExt>) {
        ctx.provide_recv(PORT, 4 * self.n as usize);
        let data = Bytes::from(vec![self.me.0 as u8; self.size]);
        self.forward(ctx, self.me.0, &data);
    }
    fn on_notice(&mut self, n: Notice<McastNotice>, ctx: &mut HostCtx<'_, McastExt>) {
        if let Notice::Recv { tag, data, .. } = n {
            ctx.provide_recv(PORT, 1);
            let root = tag as u32;
            self.forward(ctx, root, &data);
            self.got += 1;
            if self.got == self.n - 1 {
                self.done.lock().expect("shared app state mutex poisoned")[self.me.idx()] = ctx.now();
            }
        }
    }
}

fn makespan(n: u32, size: usize, nic: bool) -> f64 {
    let fabric = Fabric::new(Topology::for_nodes(n), 23);
    let shared = Arc::new(trees(n));
    let done: Completion = Arc::new(Mutex::new(vec![SimTime::ZERO; n as usize]));
    let mut cluster = Cluster::new(GmParams::default(), fabric, |_| McastExt::new());
    for i in 0..n {
        if nic {
            cluster.set_app(
                NodeId(i),
                Box::new(NbAll {
                    me: NodeId(i),
                    n,
                    size,
                    trees: shared.clone(),
                    ready: 0,
                    got: 0,
                    done: done.clone(),
                }),
            );
        } else {
            cluster.set_app(
                NodeId(i),
                Box::new(HbAll {
                    me: NodeId(i),
                    n,
                    size,
                    trees: shared.clone(),
                    got: 0,
                    done: done.clone(),
                }),
            );
        }
    }
    let mut eng = cluster.into_engine();
    let outcome = eng.run(SimTime::MAX, 2_000_000_000);
    assert_eq!(outcome, gm_sim::RunOutcome::Idle, "all-bcast hung");
    let d = done.lock().expect("shared app state mutex poisoned");
    assert!(d.iter().all(|&t| t > SimTime::ZERO), "someone never finished");
    d.iter().map(|t| t.as_micros_f64()).fold(0.0, f64::max)
}

#[derive(Serialize)]
struct Point {
    nodes: u32,
    size: usize,
    hb_us: f64,
    nb_us: f64,
    improvement: f64,
}

fn main() {
    let _opts = CliOpts::parse();
    let mut points = Vec::new();
    for &n in &[4u32, 8, 16] {
        for &size in &[64usize, 1024, 8192] {
            points.push((n, size));
        }
    }
    let results: Vec<Point> = par_map(points, |&(n, size)| {
        let hb = makespan(n, size, false);
        let nb = makespan(n, size, true);
        Point {
            nodes: n,
            size,
            hb_us: hb,
            nb_us: nb,
            improvement: hb / nb,
        }
    });
    let mut t = Table::new(
        "All-to-all broadcast makespan (every node roots a simultaneous multicast)",
        &["nodes", "size", "host-based", "NIC-based", "factor"],
    );
    for p in &results {
        t.row(vec![
            p.nodes.to_string(),
            p.size.to_string(),
            us(p.hb_us),
            us(p.nb_us),
            factor(p.hb_us, p.nb_us),
        ]);
    }
    t.print();
    println!(
        "\nWith N concurrent trees the host-based scheme pays N-1 receive\n\
         wakeups plus forwarding work on every node; the NIC-based scheme's\n\
         per-group state keeps the hosts out of it entirely."
    );
    bench::write_json("ext_allbcast", &results);
}
