//! Extension study (paper future work): a NIC-level barrier built on the
//! multicast group tree — children push UP tokens to their parents entirely
//! in firmware and the root releases everyone through a zero-byte reliable
//! multicast — compared against the host-level dissemination barrier the
//! MPI layer uses.

use std::sync::Mutex;
use std::sync::Arc;

use bench::{par_map, us, CliOpts, Table};
use gm::{Cluster, GmParams, HostApp, HostCtx, Notice};
use gm_mpi::{execute_mpi, BcastImpl, MpiOp, MpiRun};
use gm_sim::{SimDuration, SimTime};
use myrinet::{Fabric, GroupId, NodeId, PortId, Topology};
use nic_mcast::{McastExt, McastNotice, McastRequest, SpanningTree, TreeShape};
use serde::Serialize;

const PORT: PortId = PortId(0);
const GID: GroupId = GroupId(1);

struct BarrierLoop {
    me: NodeId,
    tree: SpanningTree,
    rounds: u32,
    round: u32,
    t_start: Arc<Mutex<SimTime>>,
    t_end: Arc<Mutex<SimTime>>,
    warmup: u32,
}

impl HostApp<McastExt> for BarrierLoop {
    fn on_start(&mut self, ctx: &mut HostCtx<'_, McastExt>) {
        ctx.provide_recv(PORT, 8);
        ctx.ext(McastRequest::CreateGroup {
            group: GID,
            port: PORT,
            root: self.tree.root(),
            parent: self.tree.parent(self.me),
            children: self.tree.children(self.me).to_vec(),
        });
    }
    fn on_notice(&mut self, n: Notice<McastNotice>, ctx: &mut HostCtx<'_, McastExt>) {
        match n {
            Notice::Ext(McastNotice::GroupReady { .. }) => {
                ctx.ext(McastRequest::BarrierEnter {
                    group: GID,
                    tag: 0,
                });
            }
            Notice::Ext(McastNotice::BarrierDone { .. }) => {
                self.round += 1;
                if self.me.0 == 0 {
                    if self.round == self.warmup {
                        *self.t_start.lock().expect("shared app state mutex poisoned") = ctx.now();
                    }
                    if self.round == self.rounds {
                        *self.t_end.lock().expect("shared app state mutex poisoned") = ctx.now();
                    }
                }
                if self.round < self.rounds {
                    ctx.ext(McastRequest::BarrierEnter {
                        group: GID,
                        tag: self.round as u64,
                    });
                }
            }
            _ => {}
        }
    }
}

fn nic_barrier_round_us(n: u32, warmup: u32, iters: u32) -> f64 {
    let rounds = warmup + iters;
    let fabric = Fabric::new(Topology::for_nodes(n), 13);
    let dests: Vec<NodeId> = (1..n).map(NodeId).collect();
    let tree = SpanningTree::build(NodeId(0), &dests, TreeShape::Binomial);
    let t_start = Arc::new(Mutex::new(SimTime::ZERO));
    let t_end = Arc::new(Mutex::new(SimTime::ZERO));
    let mut cluster = Cluster::new(GmParams::default(), fabric, |_| McastExt::new());
    for i in 0..n {
        cluster.set_app(
            NodeId(i),
            Box::new(BarrierLoop {
                me: NodeId(i),
                tree: tree.clone(),
                rounds,
                round: 0,
                t_start: t_start.clone(),
                t_end: t_end.clone(),
                warmup,
            }),
        );
    }
    cluster.into_engine().run_to_idle();
    let span = t_end.lock().expect("shared app state mutex poisoned").saturating_since(*t_start.lock().expect("shared app state mutex poisoned"));
    span.as_micros_f64() / iters as f64
}

fn host_barrier_round_us(n: u32, warmup: u32, iters: u32) -> f64 {
    let mut run = MpiRun::bcast_loop(n, 1, BcastImpl::HostBinomial, SimDuration::ZERO, 0, 1);
    run.ops = vec![MpiOp::Barrier];
    run.repeat = warmup + iters;
    run.warmup = warmup;
    execute_mpi(&run).barrier_round.mean()
}

#[derive(Serialize)]
struct Point {
    nodes: u32,
    host_us: f64,
    nic_us: f64,
    improvement: f64,
}

fn main() {
    let opts = CliOpts::parse();
    let results: Vec<Point> = par_map(vec![4u32, 8, 16, 32, 64], |&n| {
        let host_us = host_barrier_round_us(n, opts.warmup, opts.iters);
        let nic_us = nic_barrier_round_us(n, opts.warmup, opts.iters);
        Point {
            nodes: n,
            host_us,
            nic_us,
            improvement: host_us / nic_us,
        }
    });
    let mut t = Table::new(
        "NIC-level barrier vs host dissemination barrier (per-round time)",
        &["nodes", "host dissem (us)", "NIC tree (us)", "factor"],
    );
    for p in &results {
        t.row(vec![
            p.nodes.to_string(),
            us(p.host_us),
            us(p.nic_us),
            format!("{:.2}", p.improvement),
        ]);
    }
    t.print();
    println!(
        "\nThe gather-up / multicast-release barrier runs entirely in NIC\n\
         firmware: no host wakeups on interior nodes, so rounds cost a tree\n\
         traversal instead of log2(n) host-level message exchanges."
    );
    bench::write_json("ext_nic_barrier", &results);
}
