//! Extension study (paper future work): "we intend to study its
//! scalability in large scale systems". The simulated substrate runs
//! two-level Clos fabrics up to 128 nodes; this binary sweeps system size
//! for a small and a large message and reports both schemes.

use bench::{factor, par_map, us, CliOpts, Table};
use nic_mcast::{Scenario, TreeShape};
use serde::Serialize;

#[derive(Serialize)]
struct Point {
    nodes: u32,
    size: usize,
    hb_us: f64,
    nb_us: f64,
    improvement: f64,
    nb_height: usize,
}

fn main() {
    let sweep_started = std::time::Instant::now();
    let opts = CliOpts::parse();
    let mut points = Vec::new();
    for &n in &[8u32, 16, 24, 32, 48, 64, 96, 128] {
        for &size in &[64usize, 16384] {
            points.push((n, size));
        }
    }
    let results: Vec<Point> = par_map(points, |&(n, size)| {
        let m = |s: Scenario, shape: TreeShape| {
            s.size(size)
                .tree(shape)
                .warmup(opts.warmup)
                .iters(opts.iters)
                .run()
        };
        let hb = m(Scenario::host_based(n), TreeShape::Binomial);
        let nb = m(Scenario::nic_based(n), TreeShape::auto());
        Point {
            nodes: n,
            size,
            hb_us: hb.latency.mean(),
            nb_us: nb.latency.mean(),
            improvement: hb.latency.mean() / nb.latency.mean(),
            nb_height: nb.height,
        }
    });

    for &size in &[64usize, 16384] {
        let mut t = Table::new(
            &format!("Scalability sweep, {size}-byte multicast"),
            &["nodes", "host-based", "NIC-based", "factor", "NB height"],
        );
        for p in results.iter().filter(|p| p.size == size) {
            t.row(vec![
                p.nodes.to_string(),
                us(p.hb_us),
                us(p.nb_us),
                factor(p.hb_us, p.nb_us),
                p.nb_height.to_string(),
            ]);
        }
        t.print();
        println!();
    }
    println!(
        "No centralized state anywhere: group tables, sequence arrays and\n\
         retransmission records are all per-node, so the advantage compounds\n\
         with depth instead of saturating."
    );
    bench::write_json("ext_scalability", &results);
    // Sharded runs record under their own key so the sequential baseline
    // (what the CI perf gate compares against) is never overwritten by a
    // run in a different execution mode.
    let shards = nic_mcast::env_shards();
    if shards > 1 {
        bench::perf::record(&format!("ext_scalability_shards{shards}"), sweep_started.elapsed());
    } else {
        bench::perf::record("ext_scalability", sweep_started.elapsed());
    }
}
