//! The classic GM diagnostic, recreated: unicast half-round-trip latency
//! and streaming bandwidth for every message size (the original `gm_allsize`
//! shipped with Myricom's GM). Validates the substrate's calibration
//! against era numbers (LANai 9 / PCI64B: ~7 µs short-message latency,
//! bandwidth approaching the 250 MB/s wire limit).

use std::sync::Mutex;
use std::sync::Arc;

use bench::{par_map, Table};
use bytes::Bytes;
use gm::{Cluster, GmParams, HostApp, HostCtx, Never, NoExt, Notice};
use gm_sim::SimTime;
use myrinet::{Fabric, NodeId, PortId, Topology};
use serde::Serialize;

const P0: PortId = PortId(0);

/// Ping-pong: node 0 measures `iters` half round trips.
struct Pinger {
    size: usize,
    iters: u32,
    warmup: u32,
    count: u32,
    t0: SimTime,
    rtt_sum_us: Arc<Mutex<f64>>,
}

impl HostApp<NoExt> for Pinger {
    fn on_start(&mut self, ctx: &mut HostCtx<'_, NoExt>) {
        ctx.provide_recv(P0, 2);
        self.t0 = ctx.now();
        ctx.send(NodeId(1), P0, P0, Bytes::from(vec![0; self.size]), 0);
    }
    fn on_notice(&mut self, n: Notice<Never>, ctx: &mut HostCtx<'_, NoExt>) {
        if let Notice::Recv { .. } = n {
            if self.count >= self.warmup {
                *self.rtt_sum_us.lock().expect("shared app state mutex poisoned") += (ctx.now() - self.t0).as_micros_f64();
            }
            self.count += 1;
            ctx.provide_recv(P0, 1);
            if self.count < self.iters + self.warmup {
                self.t0 = ctx.now();
                ctx.send(NodeId(1), P0, P0, Bytes::from(vec![0; self.size]), 0);
            }
        }
    }
}

struct Echo {
    size: usize,
}

impl HostApp<NoExt> for Echo {
    fn on_start(&mut self, ctx: &mut HostCtx<'_, NoExt>) {
        ctx.provide_recv(P0, 2);
    }
    fn on_notice(&mut self, n: Notice<Never>, ctx: &mut HostCtx<'_, NoExt>) {
        if let Notice::Recv { .. } = n {
            ctx.provide_recv(P0, 1);
            ctx.send(NodeId(0), P0, P0, Bytes::from(vec![0; self.size]), 0);
        }
    }
}

/// Streaming: node 0 blasts `count` messages; bandwidth at the receiver.
struct Blaster {
    size: usize,
    count: u32,
}

impl HostApp<NoExt> for Blaster {
    fn on_start(&mut self, ctx: &mut HostCtx<'_, NoExt>) {
        for i in 0..self.count {
            ctx.send(NodeId(1), P0, P0, Bytes::from(vec![0; self.size]), i as u64);
        }
    }
    fn on_notice(&mut self, _: Notice<Never>, _: &mut HostCtx<'_, NoExt>) {}
}

struct Counter {
    expect: u32,
    got: u32,
    done_at: Arc<Mutex<SimTime>>,
}

impl HostApp<NoExt> for Counter {
    fn on_start(&mut self, ctx: &mut HostCtx<'_, NoExt>) {
        ctx.provide_recv(P0, self.expect as usize);
    }
    fn on_notice(&mut self, n: Notice<Never>, ctx: &mut HostCtx<'_, NoExt>) {
        if let Notice::Recv { .. } = n {
            self.got += 1;
            ctx.provide_recv(P0, 1);
            if self.got == self.expect {
                *self.done_at.lock().expect("shared app state mutex poisoned") = ctx.now();
            }
        }
    }
}

fn half_rtt_us(size: usize, iters: u32) -> f64 {
    let sum = Arc::new(Mutex::new(0.0));
    let mut c = Cluster::new(GmParams::default(), Fabric::new(Topology::for_nodes(2), 1), |_| NoExt);
    c.set_app(
        NodeId(0),
        Box::new(Pinger {
            size,
            iters,
            warmup: 5,
            count: 0,
            t0: SimTime::ZERO,
            rtt_sum_us: sum.clone(),
        }),
    );
    c.set_app(NodeId(1), Box::new(Echo { size }));
    c.into_engine().run_to_idle();
    let s = *sum.lock().expect("shared app state mutex poisoned");
    s / iters as f64 / 2.0
}

fn bandwidth_mbs(size: usize, count: u32) -> f64 {
    let done_at = Arc::new(Mutex::new(SimTime::ZERO));
    let mut c = Cluster::new(GmParams::default(), Fabric::new(Topology::for_nodes(2), 1), |_| NoExt);
    c.set_app(NodeId(0), Box::new(Blaster { size, count }));
    c.set_app(
        NodeId(1),
        Box::new(Counter {
            expect: count,
            got: 0,
            done_at: done_at.clone(),
        }),
    );
    c.into_engine().run_to_idle();
    let t = done_at.lock().expect("shared app state mutex poisoned").as_micros_f64();
    assert!(t > 0.0, "stream incomplete");
    (size as u64 * count as u64) as f64 / t
}

#[derive(Serialize)]
struct Point {
    size: usize,
    half_rtt_us: f64,
    bandwidth_mbs: f64,
}

fn main() {
    let sizes: Vec<usize> = (0..=17).map(|p| 1usize << p).collect(); // 1B..128KB
    let results: Vec<Point> = par_map(sizes, |&size| Point {
        size,
        half_rtt_us: half_rtt_us(size, 50),
        bandwidth_mbs: bandwidth_mbs(size, 60),
    });
    let mut t = Table::new(
        "gm_allsize: unicast latency and bandwidth (simulated GM-2)",
        &["size", "latency (us)", "bandwidth (MB/s)"],
    );
    for p in &results {
        t.row(vec![
            p.size.to_string(),
            format!("{:.2}", p.half_rtt_us),
            format!("{:.1}", p.bandwidth_mbs),
        ]);
    }
    t.print();
    println!(
        "\nCalibration targets: ~7 us short-message latency, large-message\n\
         bandwidth approaching the 250 MB/s Myrinet-2000 wire rate."
    );
    bench::write_json("gm_allsize", &results);
}
