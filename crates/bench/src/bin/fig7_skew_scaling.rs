//! Figure 7: the effect of process skew for systems of different sizes —
//! improvement factor of NIC-based over host-based `MPI_Bcast` host CPU
//! time, for 4-byte and 4 KB messages at a fixed 400 µs average skew, over
//! 4/8/12/16 nodes.
//!
//! Paper: "the improvement factor becomes greater as the system size
//! increases ... a larger size system can benefit more from the NIC-based
//! multicast for the reduced effects of process skew."

use bench::{par_map, CliOpts, Table};
use gm_mpi::{execute_mpi, BcastImpl, MpiRun};
use gm_sim::SimDuration;
use serde::Serialize;

#[derive(Serialize)]
struct Point {
    nodes: u32,
    size: usize,
    hb_cpu_us: f64,
    nb_cpu_us: f64,
    improvement: f64,
}

fn main() {
    let opts = CliOpts::parse();
    let sizes = [4usize, 4096];
    let node_counts = [4u32, 8, 12, 16];
    // 400us average skew => uniform window of 1600us (see fig6_skew).
    let skew = SimDuration::from_micros(1600);

    let mut points = Vec::new();
    for &size in &sizes {
        for &n in &node_counts {
            points.push((size, n));
        }
    }
    let results: Vec<Point> = par_map(points, |&(size, n)| {
        let measure = |b: BcastImpl| {
            let run = MpiRun::bcast_loop(n, size, b, skew, opts.warmup, opts.iters);
            execute_mpi(&run).bcast_cpu.mean()
        };
        let hb = measure(BcastImpl::HostBinomial);
        let nb = measure(BcastImpl::NicBased);
        Point {
            nodes: n,
            size,
            hb_cpu_us: hb,
            nb_cpu_us: nb,
            improvement: hb / nb,
        }
    });

    let mut t = Table::new(
        "Figure 7: improvement factor vs system size (400us average skew)",
        &["nodes", "4B HB", "4B NB", "4B factor", "4KB HB", "4KB NB", "4KB factor"],
    );
    for &n in &node_counts {
        let get = |size: usize| {
            results
                .iter()
                .find(|p| p.nodes == n && p.size == size)
                .expect("point exists")
        };
        t.row(vec![
            n.to_string(),
            format!("{:.2}", get(4).hb_cpu_us),
            format!("{:.2}", get(4).nb_cpu_us),
            format!("{:.2}", get(4).improvement),
            format!("{:.2}", get(4096).hb_cpu_us),
            format!("{:.2}", get(4096).nb_cpu_us),
            format!("{:.2}", get(4096).improvement),
        ]);
    }
    t.print();

    let mono = |size: usize| -> bool {
        let f: Vec<f64> = node_counts
            .iter()
            .map(|&n| {
                results
                    .iter()
                    .find(|p| p.nodes == n && p.size == size)
                    .expect("point")
                    .improvement
            })
            .collect();
        f.windows(2).all(|w| w[1] >= w[0] * 0.95)
    };
    println!("\nPaper: improvement grows with system size for both sizes (to ~5.8x/~2.9x).");
    println!(
        "Measured: growth with size holds for 4B: {}, for 4KB: {}",
        mono(4),
        mono(4096)
    );
    bench::write_json("fig7_skew_scaling", &results);
}
