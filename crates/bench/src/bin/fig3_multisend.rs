//! Figure 3: the NIC-based multisend vs host-based multiple unicasts.
//!
//! "Our tests were conducted by having the source node transmit a message to
//! multiple destinations, and wait for an acknowledgment from the last
//! destination. All destinations received the message from the source node,
//! and none of them forwarded the message."
//!
//! Regenerates both panels: (a) latency for 3/4/8 destinations across
//! 1 B..16 KB, and (b) the NB-over-HB improvement factor.

use bench::{factor, par_map, us, CliOpts, Sweep, Table};
use nic_mcast::{AckMode, Scenario, TreeShape};
use serde::Serialize;

#[derive(Serialize)]
struct Point {
    dests: u32,
    size: usize,
    hb_us: f64,
    nb_us: f64,
    improvement: f64,
}

fn main() {
    let opts = CliOpts::parse();
    let dest_counts = [3u32, 4, 8];
    let sweep = Sweep::gm_sizes();

    let mut points = Vec::new();
    for &k in &dest_counts {
        for size in &sweep {
            points.push((k, size));
        }
    }
    let results: Vec<Point> = par_map(points, |&(k, size)| {
        let measure = |s: Scenario| -> f64 {
            // Multisend: a flat tree — every destination is a direct child
            // of the root, no forwarding.
            s.size(size)
                .tree(TreeShape::Flat)
                .ack(AckMode::NicAck)
                .warmup(opts.warmup)
                .iters(opts.iters)
                .run()
                .latency
                .mean()
        };
        let hb = measure(Scenario::host_based(k + 1));
        let nb = measure(Scenario::nic_based(k + 1));
        Point {
            dests: k,
            size,
            hb_us: hb,
            nb_us: nb,
            improvement: hb / nb,
        }
    });

    let mut latency = Table::new(
        "Figure 3(a): multisend latency (us)",
        &["size", "HB-3", "HB-4", "HB-8", "NB-3", "NB-4", "NB-8"],
    );
    let mut improv = Table::new(
        "Figure 3(b): improvement factor (HB/NB)",
        &["size", "3", "4", "8"],
    );
    for size in &sweep {
        let get = |k: u32| {
            results
                .iter()
                .find(|p| p.dests == k && p.size == size)
                .expect("point exists")
        };
        latency.row(vec![
            size.to_string(),
            us(get(3).hb_us),
            us(get(4).hb_us),
            us(get(8).hb_us),
            us(get(3).nb_us),
            us(get(4).nb_us),
            us(get(8).nb_us),
        ]);
        improv.row(vec![
            size.to_string(),
            factor(get(3).hb_us, get(3).nb_us),
            factor(get(4).hb_us, get(4).nb_us),
            factor(get(8).hb_us, get(8).nb_us),
        ]);
    }
    latency.print();
    println!();
    improv.print();

    let peak = results
        .iter()
        .filter(|p| p.dests == 4 && p.size <= 128)
        .map(|p| p.improvement)
        .fold(0.0f64, f64::max);
    println!("\nPaper: improvement up to 2.05x for <=128B at 4 destinations.");
    println!("Measured peak (<=128B, 4 dests): {peak:.2}x");
    bench::write_json_sweep("fig3_multisend", &sweep, &results);
}
