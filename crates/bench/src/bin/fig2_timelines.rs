//! Figure 2: abstract timing diagrams comparing host-based multiple
//! unicasts, the NIC-based multisend, and NIC-based forwarding — regenerated
//! as real event timelines from the probe layer.
//!
//! Panel (a): the host posts one send request per destination and the NIC
//! repeats the token processing. Panel (b): one multisend request, replicas
//! produced by descriptor callbacks. Panel (c): an intermediate NIC forwards
//! a received packet before its own host hears about the message.

use gm_sim::probe::{Phase, ProbeEvent};
use gm_sim::SimTime;
use nic_mcast::{McastMode, ProbeConfig, Scenario, TreeShape};

fn describe(e: &ProbeEvent) -> String {
    let name = e.id.name;
    match e.phase {
        Phase::Begin if e.label.is_empty() => format!("{name} start"),
        Phase::Begin => format!("{name} start ({})", e.label),
        Phase::End => format!("{name} end"),
        Phase::Mark if e.label.is_empty() => name.to_string(),
        Phase::Mark => format!("{name} ({})", e.label),
        Phase::Complete => format!("{name} span {:.2}us", e.dur.as_micros_f64()),
    }
}

fn render(title: &str, scenario: Scenario, focus: &[u32], window_from_first: &str) {
    let report = scenario.probes(ProbeConfig::spans()).run();
    // The workload computes for 200us before the first iteration; show the
    // window from the first post-sync host call on the root.
    let start = report
        .probe
        .iter()
        .find(|e| e.time > SimTime::from_nanos(200_000) && e.id == gm::probes::HOST_CALL)
        .map(|e| e.time)
        .unwrap_or(SimTime::ZERO);
    println!("== {title} ==");
    println!("(t=0 is the root's send request; {window_from_first})");
    println!("{:>10}  {:<5} event", "t (us)", "node");
    let mut shown = 0;
    for e in report.probe.iter() {
        if e.time < start || shown > 60 {
            continue;
        }
        if !focus.contains(&e.node) {
            continue;
        }
        let rel = e.time.saturating_since(start).as_micros_f64();
        if rel > 60.0 {
            break;
        }
        println!("{rel:>10.2}  n{:<4} {}", e.node, describe(e));
        shown += 1;
    }
    println!();
}

fn main() {
    let mk = |mode: McastMode, shape: TreeShape| {
        let s = match mode {
            McastMode::NicBased => Scenario::nic_based(5),
            McastMode::HostBased => Scenario::host_based(5),
        };
        s.size(1024).tree(shape).warmup(0).iters(1)
    };
    render(
        "Figure 2(a): host-based multiple unicasts (root = n0, 4 dests)",
        mk(McastMode::HostBased, TreeShape::Flat),
        &[0],
        "note the repeated send_token processing per destination",
    );
    render(
        "Figure 2(b): NIC-based multisend (one request, callback replicas)",
        mk(McastMode::NicBased, TreeShape::Flat),
        &[0],
        "one host_req, then per-replica callback + wire_tx",
    );
    render(
        "Figure 2(c): NIC-based forwarding (chain 0->1->2..., watch n1)",
        mk(McastMode::NicBased, TreeShape::Chain),
        &[1],
        "n1's wire_tx (forward) precedes its host notice (recv)",
    );
}
