//! Figure 2: abstract timing diagrams comparing host-based multiple
//! unicasts, the NIC-based multisend, and NIC-based forwarding — regenerated
//! as real event timelines from the protocol trace.
//!
//! Panel (a): the host posts one send request per destination and the NIC
//! repeats the token processing. Panel (b): one multisend request, replicas
//! produced by descriptor callbacks. Panel (c): an intermediate NIC forwards
//! a received packet before its own host hears about the message.

use gm_sim::SimTime;
use nic_mcast::{build_cluster, McastMode, McastRun, TreeShape};

fn render(title: &str, run: &McastRun, focus: &[u32], window_from_first: &str) {
    let (mut cluster, _shared) = build_cluster(run);
    cluster.trace.enable();
    let mut eng = cluster.into_engine();
    eng.run_to_idle();
    let trace = &eng.world().trace;
    // The workload computes for 200us before the first iteration; show the
    // window from the first post-sync host call on the root.
    let start = trace
        .events()
        .iter()
        .find(|e| {
            e.time > SimTime::from_nanos(200_000)
                && matches!(e.what, gm::TraceKind::HostCall(_))
        })
        .map(|e| e.time)
        .unwrap_or(SimTime::ZERO);
    println!("== {title} ==");
    println!("(t=0 is the root's send request; {window_from_first})");
    println!("{:>10}  {:<5} event", "t (us)", "node");
    let mut shown = 0;
    for e in trace.events() {
        if e.time < start || shown > 60 {
            continue;
        }
        if !focus.contains(&e.node.0) {
            continue;
        }
        let rel = e.time.saturating_since(start).as_micros_f64();
        if rel > 60.0 {
            break;
        }
        println!("{rel:>10.2}  {:<5} {:?}", e.node.to_string(), e.what);
        shown += 1;
    }
    println!();
}

fn main() {
    let mk = |mode: McastMode| {
        let mut run = McastRun::new(5, 1024, mode, TreeShape::Flat);
        run.warmup = 0;
        run.iters = 1;
        run
    };
    render(
        "Figure 2(a): host-based multiple unicasts (root = n0, 4 dests)",
        &mk(McastMode::HostBased),
        &[0],
        "note the repeated send_token processing per destination",
    );
    render(
        "Figure 2(b): NIC-based multisend (one request, callback replicas)",
        &mk(McastMode::NicBased),
        &[0],
        "one host_req, then per-replica callback + TxStart",
    );
    let mut fwd = McastRun::new(5, 1024, McastMode::NicBased, TreeShape::Chain);
    fwd.warmup = 0;
    fwd.iters = 1;
    render(
        "Figure 2(c): NIC-based forwarding (chain 0->1->2..., watch n1)",
        &fwd,
        &[1],
        "n1's TxStart (forward) precedes its host Notice(recv)",
    );
}
