//! Figure 1: the feature-axes comparison of NIC-supported multicast
//! schemes, rendered as a matrix (see `nic_mcast::features`).

fn main() {
    println!("== Figure 1: multicast scheme feature comparison ==\n");
    print!("{}", nic_mcast::features::render_table());
    println!(
        "\nOur scheme is the only one combining NIC forwarding, ack-based\n\
         reliability (no credit flow control), protection, preposted tree\n\
         information and decentralized state (scalability)."
    );
}
