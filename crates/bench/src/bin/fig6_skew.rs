//! Figure 6: average host CPU time spent in `MPI_Bcast` under process skew
//! (16 nodes; 2-, 4- and 8-byte messages; average skew 0..400 µs), for the
//! host-based and NIC-based broadcasts, plus the improvement factors.
//!
//! Methodology (paper §6.3): all ranks synchronize with `MPI_Barrier`; every
//! non-root rank draws a skew uniformly in [−max/2, +max/2]; positive draws
//! compute for that long before calling `MPI_Bcast`. The average host CPU
//! time in the broadcast call is plotted against the average skew.
//!
//! Paper headline: with 400 µs average skew the NIC-based approach improves
//! host CPU time by up to 5.82x for 2-8 byte messages, and the curves
//! diverge around 40 µs (host-based starts rising, NIC-based keeps falling).

use bench::{par_map, us, CliOpts, Table};
use gm_mpi::{execute_mpi, BcastImpl, MpiRun};
use gm_sim::SimDuration;
use serde::Serialize;

/// The drawn skew is uniform on [−max/2, +max/2]; the positive half has
/// mean max/4, and only it delays the broadcast, so the paper's "average
/// skew" axis maps to max/4.
fn max_for_avg(avg_us: u64) -> SimDuration {
    SimDuration::from_micros(avg_us * 4)
}

#[derive(Serialize)]
struct Point {
    size: usize,
    avg_skew_us: u64,
    hb_cpu_us: f64,
    nb_cpu_us: f64,
    improvement: f64,
}

fn main() {
    let opts = CliOpts::parse();
    // Small messages (Figure 6 proper) plus the large-message variant the
    // paper reports via its technical report ("when broadcasting large
    // messages (2KB to 8KB), a similar trend ... is also observed",
    // "an improvement factor up to 2.9 for large (2KB) messages").
    let sizes = [2usize, 4, 8, 2048, 4096, 8192];
    let skews = [0u64, 25, 50, 100, 150, 200, 250, 300, 350, 400];
    let n = 16u32;

    let mut points = Vec::new();
    for &size in &sizes {
        for &avg in &skews {
            points.push((size, avg));
        }
    }
    let results: Vec<Point> = par_map(points, |&(size, avg)| {
        let measure = |b: BcastImpl| {
            let run = MpiRun::bcast_loop(n, size, b, max_for_avg(avg), opts.warmup, opts.iters);
            execute_mpi(&run).bcast_cpu.mean()
        };
        let hb = measure(BcastImpl::HostBinomial);
        let nb = measure(BcastImpl::NicBased);
        Point {
            size,
            avg_skew_us: avg,
            hb_cpu_us: hb,
            nb_cpu_us: nb,
            improvement: hb / nb,
        }
    });

    let mut cpu = Table::new(
        "Figure 6(a): average host CPU time in MPI_Bcast (us), 16 nodes",
        &["avg skew", "HB 2B", "HB 4B", "HB 8B", "NB 2B", "NB 4B", "NB 8B"],
    );
    let mut improv = Table::new(
        "Figure 6(b): improvement factor (HB/NB)",
        &["avg skew", "2B", "4B", "8B"],
    );
    let mut large = Table::new(
        "Figure 6 (large-message variant, from the technical report): factor (HB/NB)",
        &["avg skew", "2KB", "4KB", "8KB"],
    );
    for &avg in &skews {
        let get = |size: usize| {
            results
                .iter()
                .find(|p| p.size == size && p.avg_skew_us == avg)
                .expect("point exists")
        };
        cpu.row(vec![
            avg.to_string(),
            us(get(2).hb_cpu_us),
            us(get(4).hb_cpu_us),
            us(get(8).hb_cpu_us),
            us(get(2).nb_cpu_us),
            us(get(4).nb_cpu_us),
            us(get(8).nb_cpu_us),
        ]);
        improv.row(vec![
            avg.to_string(),
            format!("{:.2}", get(2).improvement),
            format!("{:.2}", get(4).improvement),
            format!("{:.2}", get(8).improvement),
        ]);
        large.row(vec![
            avg.to_string(),
            format!("{:.2}", get(2048).improvement),
            format!("{:.2}", get(4096).improvement),
            format!("{:.2}", get(8192).improvement),
        ]);
    }
    cpu.print();
    println!();
    improv.print();
    println!();
    large.print();

    let peak = results
        .iter()
        .filter(|p| p.avg_skew_us == 400 && p.size <= 8)
        .map(|p| p.improvement)
        .fold(0.0f64, f64::max);
    let large_2k = results
        .iter()
        .find(|p| p.avg_skew_us == 400 && p.size == 2048)
        .map(|p| p.improvement)
        .unwrap_or(0.0);
    println!("\nPaper: up to 5.82x (small) and ~2.9x (2KB) at 400us average skew.");
    println!("Measured at 400us: small peak {peak:.2}x, 2KB {large_2k:.2}x");
    bench::write_json("fig6_skew", &results);
}
