//! Deep-dive explorer: run one multicast configuration with span probes
//! enabled, export the full event timeline as Chrome trace-event JSON
//! (loadable in Perfetto or `chrome://tracing`) and print the latency
//! attribution table that splits each measured iteration into exclusive
//! host / NIC / PCI / serialization / contention / retransmission buckets.
//!
//! ```console
//! cargo run --release -p bench --bin trace_explore -- \
//!     --nodes 16 --size 4096 --mode nic --shape adaptive --loss 0.0
//! ```
//!
//! `--check` re-parses the emitted JSON and validates the trace-event
//! schema (used by CI): every event carries `ph`/`pid`/`tid`, non-metadata
//! events carry `ts`, `B`/`E` pairs balance per (pid, tid) lane, and
//! timestamps never decrease within a lane (a shard-merged probe stream
//! that interleaved wrongly would fail here).

use std::collections::BTreeMap;

use gm_sim::probe::perfetto;
use nic_mcast::{McastMode, ProbeConfig, Scenario, TreeShape};
use serde::Value;

struct Opts {
    nodes: u32,
    size: usize,
    mode: McastMode,
    shape: String,
    loss: f64,
    iters: u32,
    warmup: u32,
    seed: u64,
    check: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: trace_explore [--nodes N] [--size BYTES] [--mode nic|host] \
         [--shape adaptive|binomial|flat|chain|kary:K] [--loss P] \
         [--iters N] [--warmup N] [--seed S] [--check]"
    );
    std::process::exit(2)
}

fn parse() -> Opts {
    let mut o = Opts {
        nodes: 16,
        size: 4096,
        mode: McastMode::NicBased,
        shape: "adaptive".to_string(),
        loss: 0.0,
        iters: 10,
        warmup: 2,
        seed: 1,
        check: false,
    };
    let args: Vec<String> = std::env::args().collect();
    let mut i = 1;
    let val = |i: &mut usize| -> String {
        *i += 1;
        args.get(*i).cloned().unwrap_or_else(|| usage())
    };
    while i < args.len() {
        match args[i].as_str() {
            "--nodes" => o.nodes = val(&mut i).parse().unwrap_or_else(|_| usage()),
            "--size" => o.size = val(&mut i).parse().unwrap_or_else(|_| usage()),
            "--mode" => {
                o.mode = match val(&mut i).as_str() {
                    "nic" => McastMode::NicBased,
                    "host" => McastMode::HostBased,
                    _ => usage(),
                }
            }
            "--shape" => o.shape = val(&mut i),
            "--loss" => o.loss = val(&mut i).parse().unwrap_or_else(|_| usage()),
            "--iters" => o.iters = val(&mut i).parse().unwrap_or_else(|_| usage()),
            "--warmup" => o.warmup = val(&mut i).parse().unwrap_or_else(|_| usage()),
            "--seed" => o.seed = val(&mut i).parse().unwrap_or_else(|_| usage()),
            "--check" => o.check = true,
            "--help" | "-h" => usage(),
            _ => usage(),
        }
        i += 1;
    }
    o
}

fn parse_shape(spec: &str) -> TreeShape {
    match spec {
        "adaptive" => TreeShape::auto(),
        "binomial" => TreeShape::Binomial,
        "flat" => TreeShape::Flat,
        "chain" => TreeShape::Chain,
        other => {
            if let Some(k) = other.strip_prefix("kary:") {
                return TreeShape::KAry(k.parse().unwrap_or_else(|_| usage()));
            }
            usage()
        }
    }
}

/// Validate the Chrome trace-event schema on the document we just wrote.
/// Returns the number of events checked, or an error description.
fn check_schema(doc: &str) -> Result<usize, String> {
    let v = serde_json::from_str(doc).map_err(|e| format!("not valid JSON: {e}"))?;
    let top = match v {
        Value::Map(m) => m,
        _ => return Err("top level is not an object".into()),
    };
    let events = top
        .iter()
        .find(|(k, _)| k == "traceEvents")
        .and_then(|(_, v)| match v {
            Value::Seq(s) => Some(s),
            _ => None,
        })
        .ok_or("missing traceEvents array")?;
    // B/E balance per (pid, tid) lane: depth must never go negative and
    // must end at zero (every Begin has a matching End).
    let mut depth: BTreeMap<(u64, u64), i64> = BTreeMap::new();
    // Per-lane timestamps must be non-decreasing: a shard-merged probe
    // stream that interleaved wrongly would show up here as time running
    // backwards inside a track.
    let mut last_ts: BTreeMap<(u64, u64), f64> = BTreeMap::new();
    let mut checked = 0usize;
    for (idx, ev) in events.iter().enumerate() {
        let fields = match ev {
            Value::Map(m) => m,
            _ => return Err(format!("event {idx} is not an object")),
        };
        let get = |name: &str| fields.iter().find(|(k, _)| k == name).map(|(_, v)| v);
        let ph = match get("ph") {
            Some(Value::Str(s)) => s.as_str(),
            _ => return Err(format!("event {idx}: missing string `ph`")),
        };
        if !matches!(ph, "B" | "E" | "X" | "i" | "M" | "s" | "t" | "f") {
            return Err(format!("event {idx}: unknown phase {ph:?}"));
        }
        let num = |name: &str| -> Result<u64, String> {
            match get(name) {
                Some(Value::UInt(n)) => Ok(*n),
                Some(Value::Int(n)) if *n >= 0 => Ok(*n as u64),
                _ => Err(format!("event {idx}: missing numeric `{name}`")),
            }
        };
        let pid = num("pid")?;
        let tid = num("tid")?;
        if ph != "M" {
            let ts = match get("ts") {
                Some(Value::Float(f)) => *f,
                Some(Value::UInt(n)) => *n as f64,
                Some(Value::Int(n)) => *n as f64,
                _ => return Err(format!("event {idx}: missing numeric `ts`")),
            };
            let prev = last_ts.entry((pid, tid)).or_insert(f64::NEG_INFINITY);
            if ts < *prev {
                return Err(format!(
                    "event {idx}: timestamp runs backwards on lane {pid}/{tid} \
                     ({ts} after {prev})"
                ));
            }
            *prev = ts;
        }
        let lane = depth.entry((pid, tid)).or_insert(0);
        match ph {
            "B" => *lane += 1,
            "E" => {
                *lane -= 1;
                if *lane < 0 {
                    return Err(format!("event {idx}: E without matching B on {pid}/{tid}"));
                }
            }
            _ => {}
        }
        checked += 1;
    }
    if let Some(((pid, tid), d)) = depth.iter().find(|(_, d)| **d != 0) {
        return Err(format!("unbalanced B/E on lane {pid}/{tid}: depth {d}"));
    }
    Ok(checked)
}

fn main() {
    let o = parse();
    let scenario = match o.mode {
        McastMode::NicBased => Scenario::nic_based(o.nodes),
        McastMode::HostBased => Scenario::host_based(o.nodes),
    }
    .size(o.size)
    .tree(parse_shape(&o.shape))
    .warmup(o.warmup)
    .iters(o.iters)
    .seed(o.seed)
    .loss(o.loss)
    .probes(ProbeConfig::spans());
    let built = scenario.build().unwrap_or_else(|e| {
        eprintln!("invalid scenario: {e}");
        std::process::exit(2)
    });
    let report = built.run();

    let mode_tag = match o.mode {
        McastMode::NicBased => "nic",
        McastMode::HostBased => "host",
    };
    let doc = perfetto::chrome_trace_json(report.probe.iter());
    let dir = bench::results_dir();
    let path = dir.join(format!("trace_{}_{}n_{}B.json", mode_tag, o.nodes, o.size));
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("warning: cannot create results/: {e}");
    } else if let Err(e) = bench::atomic_write(&path, &doc) {
        eprintln!("warning: cannot write {}: {e}", path.display());
    } else {
        eprintln!("(trace written to {} — open in ui.perfetto.dev)", path.display());
    }

    let mut tracks: Vec<&'static str> = Vec::new();
    for e in report.probe.iter() {
        let t = e.id.track.name();
        if !tracks.contains(&t) {
            tracks.push(t);
        }
    }
    println!(
        "{} multicast, {} nodes, {} bytes, loss {:.2}%: {} probe events, {} tracks ({})",
        match o.mode {
            McastMode::NicBased => "NIC-based",
            McastMode::HostBased => "host-based",
        },
        o.nodes,
        o.size,
        o.loss * 100.0,
        report.probe.len(),
        tracks.len(),
        tracks.join(", "),
    );
    println!("  latency (mean):   {:>10.2} us", report.latency.mean());

    // Sharded runs carry per-shard execution statistics under `parallel.*`.
    if report.metrics.get("parallel.shards") > 0 {
        let shards = report.metrics.get("parallel.shards");
        println!(
            "\nsharded execution: {} shards, {} windows, {} horizon tightenings, {} barrier waits",
            shards,
            report.metrics.get("parallel.windows"),
            report.metrics.get("parallel.horizon_tightenings"),
            report.metrics.get("parallel.barrier_waits"),
        );
        for i in 0..shards {
            println!(
                "  shard {i}: {} events",
                report.metrics.get(&format!("parallel.shard{i}.events"))
            );
        }
    }

    match &report.attribution {
        Some(attr) => {
            println!("\nlatency attribution (mean us per iteration):");
            for (label, mean) in attr.rows() {
                let pct = if attr.mean_total_us() > 0.0 {
                    100.0 * mean / attr.mean_total_us()
                } else {
                    0.0
                };
                println!("  {label:<15} {mean:>10.2}  {pct:>5.1}%");
            }
            println!("  {:<15} {:>10.2}", "total", attr.mean_total_us());
            let delta = (attr.mean_total_us() - report.latency.mean()).abs();
            let rel = if report.latency.mean() > 0.0 {
                delta / report.latency.mean()
            } else {
                0.0
            };
            println!(
                "  (attributed total vs measured mean: {:.3}% off)",
                rel * 100.0
            );
            if rel > 0.01 {
                eprintln!("error: attribution differs from measured mean by more than 1%");
                std::process::exit(1);
            }
        }
        None => println!("\n(no attribution: probes disabled or no measured windows)"),
    }

    if o.check {
        match check_schema(&doc) {
            Ok(n) => println!(
                "schema check: {n} events OK (ph/ts/pid/tid, B/E balanced, per-track ts non-decreasing)"
            ),
            Err(e) => {
                eprintln!("schema check FAILED: {e}");
                std::process::exit(1);
            }
        }
        if tracks.len() < 4 {
            eprintln!("error: expected at least 4 track types, saw {}", tracks.len());
            std::process::exit(1);
        }
        let dropped = report.metrics.get("probe.dropped_events");
        if dropped > 0 {
            eprintln!(
                "warning: probe ring overflowed, {dropped} events dropped — \
                 attribution and lineage may be incomplete (raise the ring capacity)"
            );
        }
    }
}
