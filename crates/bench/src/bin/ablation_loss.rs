//! Ablation: reliability cost under packet loss (paper §5 "Reliability and
//! In Order Delivery").
//!
//! Sweeps the random loss rate and reports multicast latency and the number
//! of retransmissions for both schemes. The NIC-based scheme retransmits
//! only to the children that have not acknowledged, from the host-memory
//! replica; everything still arrives exactly once and in order (asserted by
//! the workload).

use bench::{par_map, us, CliOpts, Table};
use nic_mcast::{Scenario, TreeShape};
use serde::Serialize;

#[derive(Serialize)]
struct Point {
    loss_pct: f64,
    nb_us: f64,
    nb_p99: f64,
    nb_retx: u64,
    hb_us: f64,
    hb_retx: u64,
}

fn main() {
    let opts = CliOpts::parse();
    let rates = [0.0f64, 0.001, 0.005, 0.01, 0.02, 0.05];
    let results: Vec<Point> = par_map(rates.to_vec(), |&rate| {
        let m = |s: Scenario| {
            let out = s
                .size(2048)
                .tree(TreeShape::Binomial)
                .warmup(opts.warmup)
                .iters(opts.iters)
                .loss(rate)
                .run();
            (out.latency.mean(), out.latency_p99, out.retransmissions)
        };
        let (nb_us, nb_p99, nb_retx) = m(Scenario::nic_based(16));
        let (hb_us, _, hb_retx) = m(Scenario::host_based(16));
        Point {
            loss_pct: rate * 100.0,
            nb_us,
            nb_p99,
            nb_retx,
            hb_us,
            hb_retx,
        }
    });

    let mut t = Table::new(
        "Loss ablation: 2KB multicast over 16 nodes (binomial tree)",
        &["loss %", "NB mean", "NB p99", "NB retx", "HB mean", "HB retx"],
    );
    for p in &results {
        t.row(vec![
            format!("{:.1}", p.loss_pct),
            us(p.nb_us),
            us(p.nb_p99),
            p.nb_retx.to_string(),
            us(p.hb_us),
            p.hb_retx.to_string(),
        ]);
    }
    t.print();
    println!(
        "\nBoth schemes deliver every message despite loss; latency grows with\n\
         the (20 ms, exponentially backed-off) timeout recoveries. Zero loss\n\
         means zero retransmissions."
    );
    bench::write_json("ablation_loss", &results);
}
