//! Ablation: replica-generation mechanism at the root (paper §5 "Sending of
//! Multiple Message Replicas").
//!
//! Approach 1 generates one send token per destination ("it saves nothing
//! more than the posting of multiple send events"); approach 2 — the
//! paper's choice — reuses the packet through descriptor callbacks, paying
//! only a header rewrite per replica. We compare both against host-based
//! multiple unicasts for small messages, where the processing cost
//! dominates.

use bench::{factor, par_map, us, CliOpts, Table};
use nic_mcast::{AckMode, McastConfig, MultisendImpl, Scenario, TreeShape};
use serde::Serialize;

#[derive(Serialize)]
struct Point {
    dests: u32,
    size: usize,
    host_based_us: f64,
    per_dest_token_us: f64,
    callback_us: f64,
}

fn main() {
    let opts = CliOpts::parse();
    let mut points = Vec::new();
    for &k in &[3u32, 4, 8] {
        for &size in &[8usize, 128, 1024, 4096] {
            points.push((k, size));
        }
    }
    let results: Vec<Point> = par_map(points, |&(k, size)| {
        let m = |s: Scenario, ms: MultisendImpl| {
            s.size(size)
                .tree(TreeShape::Flat)
                .ack(AckMode::NicAck)
                .warmup(opts.warmup)
                .iters(opts.iters)
                .config(McastConfig {
                    multisend: ms,
                    ..McastConfig::default()
                })
                .run()
                .latency
                .mean()
        };
        Point {
            dests: k,
            size,
            host_based_us: m(Scenario::host_based(k + 1), MultisendImpl::Callback),
            per_dest_token_us: m(Scenario::nic_based(k + 1), MultisendImpl::PerDestToken),
            callback_us: m(Scenario::nic_based(k + 1), MultisendImpl::Callback),
        }
    });

    let mut t = Table::new(
        "Multisend-mechanism ablation (latency us; NIC-level ack)",
        &[
            "dests",
            "size",
            "host-based",
            "per-dest token",
            "callback",
            "callback vs per-dest",
        ],
    );
    for p in &results {
        t.row(vec![
            p.dests.to_string(),
            p.size.to_string(),
            us(p.host_based_us),
            us(p.per_dest_token_us),
            us(p.callback_us),
            factor(p.per_dest_token_us, p.callback_us),
        ]);
    }
    t.print();
    println!(
        "\nPer-destination tokens only save the host postings (paper: \"no more\n\
         than 1us\"); the callback mechanism removes the repeated token\n\
         processing entirely and wins for small messages."
    );
    bench::write_json("ablation_multisend_impl", &results);
}
