//! Extension study (paper future work): NIC-based broadcast beyond the
//! eager limit. MPICH-GM's rendezvous protocol made the paper fall back to
//! host-based broadcast above 16 287 bytes; "we also intend to study the
//! NIC-based multicast using remote DMA operations". Our substrate's group
//! machinery handles arbitrarily large messages (per-packet pipelining),
//! so this binary measures what that fallback left on the table.

use bench::{factor, par_map, us, CliOpts, Table};
use gm_mpi::{execute_mpi, BcastImpl, MpiRun};
use gm_sim::SimDuration;
use serde::Serialize;

#[derive(Serialize)]
struct Point {
    size: usize,
    hb_rndv_us: f64,
    nb_direct_us: f64,
    improvement: f64,
}

fn main() {
    let opts = CliOpts::parse();
    let sizes = [32 * 1024usize, 64 * 1024, 128 * 1024, 256 * 1024];
    let n = 16u32;
    let results: Vec<Point> = par_map(sizes.to_vec(), |&size| {
        let hb = {
            // The paper's configuration: rendezvous sizes take the
            // host-based binomial path regardless of the bcast impl.
            let run = MpiRun::bcast_loop(n, size, BcastImpl::NicBased, SimDuration::ZERO, opts.warmup, opts.iters);
            execute_mpi(&run).latency.mean()
        };
        let nb = {
            let mut run =
                MpiRun::bcast_loop(n, size, BcastImpl::NicBased, SimDuration::ZERO, opts.warmup, opts.iters);
            run.nic_rndv = true;
            execute_mpi(&run).latency.mean()
        };
        Point {
            size,
            hb_rndv_us: hb,
            nb_direct_us: nb,
            improvement: hb / nb,
        }
    });

    let mut t = Table::new(
        "Rendezvous-size broadcast, 16 ranks: host-based fallback vs direct NIC multicast",
        &["size (KB)", "HB rendezvous (us)", "NB direct (us)", "factor"],
    );
    for p in &results {
        t.row(vec![
            (p.size / 1024).to_string(),
            us(p.hb_rndv_us),
            us(p.nb_direct_us),
            factor(p.hb_rndv_us, p.nb_direct_us),
        ]);
    }
    t.print();
    println!(
        "\nPer-packet NIC forwarding pipelines the whole transfer; the\n\
         host-based rendezvous path re-serializes the full message at every\n\
         tree level (RTS/CTS handshakes included)."
    );
    bench::write_json("ext_rndv_bcast", &results);
}
