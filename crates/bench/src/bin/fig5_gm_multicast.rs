//! Figure 5: GM-level multicast with NIC-based forwarding (optimal tree)
//! vs the traditional host-based multicast (binomial tree), for 4, 8 and
//! 16 node systems across 1 B..16 KB.
//!
//! The paper's headline numbers: up to 1.48x for <=512 B and up to 1.86x
//! for 16 KB on 16 nodes, with a dip at 2-4 KB where messages are too big
//! for the multisend win and too small for pipelining.

use bench::{factor, par_map, us, CliOpts, Sweep, Table};
use nic_mcast::{execute_max_over_probes, Scenario, TreeShape};
use serde::Serialize;

#[derive(Serialize)]
struct Point {
    nodes: u32,
    size: usize,
    hb_us: f64,
    nb_us: f64,
    improvement: f64,
    nb_tree_height: usize,
    nb_tree_fanout: f64,
}

fn main() {
    let sweep_started = std::time::Instant::now();
    let opts = CliOpts::parse();
    let node_counts = [4u32, 8, 16];
    let sweep = Sweep::gm_sizes();

    let mut points = Vec::new();
    for &n in &node_counts {
        for size in &sweep {
            points.push((n, size));
        }
    }
    let results: Vec<Point> = par_map(points, |&(n, size)| {
        let run_one = |s: Scenario, shape: TreeShape| {
            let built = s
                .size(size)
                .tree(shape)
                .warmup(opts.warmup)
                .iters(opts.iters)
                .build()
                .expect("valid scenario");
            if opts.all_probes {
                execute_max_over_probes(built.spec())
            } else {
                built.run().output
            }
        };
        let hb = run_one(Scenario::host_based(n), TreeShape::Binomial);
        let nb = run_one(Scenario::nic_based(n), TreeShape::auto());
        Point {
            nodes: n,
            size,
            hb_us: hb.latency.mean(),
            nb_us: nb.latency.mean(),
            improvement: hb.latency.mean() / nb.latency.mean(),
            nb_tree_height: nb.height,
            nb_tree_fanout: nb.avg_fanout,
        }
    });

    let mut latency = Table::new(
        "Figure 5(a): GM-level multicast latency (us)",
        &["size", "HB-4", "HB-8", "HB-16", "NB-4", "NB-8", "NB-16"],
    );
    let mut improv = Table::new(
        "Figure 5(b): improvement factor (HB/NB)",
        &["size", "4", "8", "16", "NB16 tree h/fan"],
    );
    for size in &sweep {
        let get = |n: u32| {
            results
                .iter()
                .find(|p| p.nodes == n && p.size == size)
                .expect("point exists")
        };
        latency.row(vec![
            size.to_string(),
            us(get(4).hb_us),
            us(get(8).hb_us),
            us(get(16).hb_us),
            us(get(4).nb_us),
            us(get(8).nb_us),
            us(get(16).nb_us),
        ]);
        let p16 = get(16);
        improv.row(vec![
            size.to_string(),
            factor(get(4).hb_us, get(4).nb_us),
            factor(get(8).hb_us, get(8).nb_us),
            factor(p16.hb_us, p16.nb_us),
            format!("{}/{:.1}", p16.nb_tree_height, p16.nb_tree_fanout),
        ]);
    }
    latency.print();
    println!();
    improv.print();

    let small = results
        .iter()
        .filter(|p| p.nodes == 16 && p.size <= 512)
        .map(|p| p.improvement)
        .fold(0.0f64, f64::max);
    let large = results
        .iter()
        .find(|p| p.nodes == 16 && p.size == 16384)
        .map(|p| p.improvement)
        .unwrap_or(0.0);
    let dip = results
        .iter()
        .filter(|p| p.nodes == 16 && (p.size == 2048 || p.size == 4096))
        .map(|p| p.improvement)
        .fold(f64::INFINITY, f64::min);
    println!("\nPaper (16 nodes): up to 1.48x (<=512B), up to 1.86x (16KB), dip at 2-4KB.");
    println!("Measured: small peak {small:.2}x, 16KB {large:.2}x, 2-4KB dip {dip:.2}x");
    bench::write_json_sweep("fig5_gm_multicast", &sweep, &results);
    bench::perf::record("fig5_gm_multicast", sweep_started.elapsed());
}
