//! Causal flow explorer: run one multicast configuration with span probes
//! *and* gauge time-series enabled, reconstruct the causal flow graph,
//! extract the critical path of every measured iteration, and render the
//! per-hop / per-resource breakdown next to the gauge telemetry — the
//! "where did the time go" view the paper derives by hand from its
//! timeline figures.
//!
//! ```console
//! cargo run --release -p bench --bin flow_explore -- \
//!     --nodes 16 --size 4096 --mode nic --shape adaptive
//! ```
//!
//! The NIC-based and host-based schemes take structurally different
//! critical paths (NIC forwarding keeps the host off the chain); the run
//! ends with a signature diff against the opposite scheme.
//!
//! `--check` turns the run into a CI gate: the flow graph must be acyclic,
//! every delivered message must have an unbroken lineage back to its host
//! send call, and every window's buckets must sum exactly to the
//! completion latency.

use gm_sim::{FlowGraph, GaugeSummary, SeriesConfig, SimDuration, HIST_BINS};
use nic_mcast::{McastMode, ProbeConfig, Report, Scenario, TreeShape};

struct Opts {
    nodes: u32,
    size: usize,
    mode: McastMode,
    shape: String,
    loss: f64,
    iters: u32,
    warmup: u32,
    seed: u64,
    shards: u32,
    check: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: flow_explore [--nodes N] [--size BYTES] [--mode nic|host] \
         [--shape adaptive|binomial|flat|chain|kary:K] [--loss P] \
         [--iters N] [--warmup N] [--seed S] [--shards N] [--check]"
    );
    std::process::exit(2)
}

fn parse() -> Opts {
    let mut o = Opts {
        nodes: 16,
        size: 4096,
        mode: McastMode::NicBased,
        shape: "adaptive".to_string(),
        loss: 0.0,
        iters: 5,
        warmup: 2,
        seed: 1,
        shards: 1,
        check: false,
    };
    let args: Vec<String> = std::env::args().collect();
    let mut i = 1;
    let val = |i: &mut usize| -> String {
        *i += 1;
        args.get(*i).cloned().unwrap_or_else(|| usage())
    };
    while i < args.len() {
        match args[i].as_str() {
            "--nodes" => o.nodes = val(&mut i).parse().unwrap_or_else(|_| usage()),
            "--size" => o.size = val(&mut i).parse().unwrap_or_else(|_| usage()),
            "--mode" => {
                o.mode = match val(&mut i).as_str() {
                    "nic" => McastMode::NicBased,
                    "host" => McastMode::HostBased,
                    _ => usage(),
                }
            }
            "--shape" => o.shape = val(&mut i),
            "--loss" => o.loss = val(&mut i).parse().unwrap_or_else(|_| usage()),
            "--iters" => o.iters = val(&mut i).parse().unwrap_or_else(|_| usage()),
            "--warmup" => o.warmup = val(&mut i).parse().unwrap_or_else(|_| usage()),
            "--seed" => o.seed = val(&mut i).parse().unwrap_or_else(|_| usage()),
            "--shards" => o.shards = val(&mut i).parse().unwrap_or_else(|_| usage()),
            "--check" => o.check = true,
            "--help" | "-h" => usage(),
            _ => usage(),
        }
        i += 1;
    }
    o
}

fn parse_shape(spec: &str) -> TreeShape {
    match spec {
        "adaptive" => TreeShape::auto(),
        "binomial" => TreeShape::Binomial,
        "flat" => TreeShape::Flat,
        "chain" => TreeShape::Chain,
        other => {
            if let Some(k) = other.strip_prefix("kary:") {
                return TreeShape::KAry(k.parse().unwrap_or_else(|_| usage()));
            }
            usage()
        }
    }
}

fn run_mode(o: &Opts, mode: McastMode) -> Report {
    match mode {
        McastMode::NicBased => Scenario::nic_based(o.nodes),
        McastMode::HostBased => Scenario::host_based(o.nodes),
    }
    .size(o.size)
    .tree(parse_shape(&o.shape))
    .warmup(o.warmup)
    .iters(o.iters)
    .seed(o.seed)
    .loss(o.loss)
    .shards(o.shards)
    .probes(ProbeConfig::spans())
    .series(SeriesConfig::on())
    .run()
}

fn mode_name(mode: McastMode) -> &'static str {
    match mode {
        McastMode::NicBased => "NIC-based",
        McastMode::HostBased => "host-based",
    }
}

/// ASCII sparkline over the fixed-width histogram bins.
fn sparkline(hist: &[u64; HIST_BINS]) -> String {
    const LEVELS: &[u8] = b" .:-=+*#%";
    let top = hist.iter().copied().max().unwrap_or(0);
    hist.iter()
        .map(|&v| {
            let lvl = if top == 0 {
                0
            } else {
                ((v * (LEVELS.len() as u64 - 1)).div_ceil(top)) as usize
            };
            LEVELS[lvl] as char
        })
        .collect()
}

/// The per-gauge summary of the busiest node (largest time-weighted mean).
fn busiest_per_gauge(summaries: &[GaugeSummary]) -> Vec<&GaugeSummary> {
    let mut best: Vec<&GaugeSummary> = Vec::new();
    for s in summaries {
        match best.iter_mut().find(|b| b.gauge == s.gauge) {
            Some(b) if b.mean_x1000 >= s.mean_x1000 => {}
            Some(b) => *b = s,
            None => best.push(s),
        }
    }
    best
}

fn main() {
    let o = parse();
    let report = run_mode(&o, o.mode);
    let events = report.probe.to_vec();
    let graph = FlowGraph::build(&events);
    let delivered = graph.delivered();

    println!(
        "{} multicast, {} nodes, {} bytes, loss {:.2}%: {} flows, {} delivered, {} probe events",
        mode_name(o.mode),
        o.nodes,
        o.size,
        o.loss * 100.0,
        graph.flows().count(),
        delivered.len(),
        events.len(),
    );
    println!("  latency (mean):   {:>10.2} us", report.latency.mean());

    // --check: structural gates over the causal graph and every window.
    let mut failures: Vec<String> = Vec::new();
    for e in graph.validate() {
        failures.push(e);
    }

    // Critical path per measured window.
    println!("\ncritical paths ({} measured windows):", report.windows.len());
    let mut last_path = None;
    for (i, &w) in report.windows.iter().enumerate() {
        match graph.critical_path(&events, w) {
            Some(cp) => {
                println!(
                    "  window {i}: {:>9.2} us  {}",
                    cp.total.as_micros_f64(),
                    cp.signature()
                );
                if cp.bucket_sum() != cp.total {
                    failures.push(format!(
                        "window {i}: buckets sum to {} but the window is {}",
                        cp.bucket_sum().as_nanos(),
                        cp.total.as_nanos()
                    ));
                }
                last_path = Some(cp);
            }
            None => failures.push(format!("window {i}: no delivery — no critical path")),
        }
    }
    if let Some(cp) = &last_path {
        println!("\nfinal window, per-hop / per-resource breakdown:");
        for (label, d) in &cp.buckets {
            let pct = if cp.total.as_nanos() > 0 {
                100.0 * d.as_micros_f64() / cp.total.as_micros_f64()
            } else {
                0.0
            };
            println!("  {label:<24} {:>9.2} us  {pct:>5.1}%", d.as_micros_f64());
        }
        println!(
            "  {:<24} {:>9.2} us  (buckets sum exactly)",
            "total",
            cp.total.as_micros_f64()
        );
    }

    // Gauge telemetry: the busiest node per gauge, with an occupancy
    // sparkline over the value bands.
    let summaries = report.series.summarize(report.end_time);
    if !summaries.is_empty() {
        println!("\ngauge telemetry (busiest node per gauge, [{HIST_BINS}-bin value histogram]):");
        for s in busiest_per_gauge(&summaries) {
            println!(
                "  {:<18} n{:<3} min {:>4}  max {:>4}  last {:>4}  mean {:>8.3}  [{}]",
                s.gauge,
                s.node,
                s.min,
                s.max,
                s.last,
                s.mean_x1000 as f64 / 1000.0,
                sparkline(&s.hist),
            );
        }
    }

    // Sharded execution statistics, when the run was sharded.
    if report.metrics.get("parallel.shards") > 0 {
        println!(
            "\nsharded execution: {} shards, {} windows, {} horizon tightenings, {} barrier waits",
            report.metrics.get("parallel.shards"),
            report.metrics.get("parallel.windows"),
            report.metrics.get("parallel.horizon_tightenings"),
            report.metrics.get("parallel.barrier_waits"),
        );
    }

    // Scheme diff: same configuration under the opposite scheme.
    let other_mode = match o.mode {
        McastMode::NicBased => McastMode::HostBased,
        McastMode::HostBased => McastMode::NicBased,
    };
    let other = run_mode(&o, other_mode);
    let other_events = other.probe.to_vec();
    let other_graph = FlowGraph::build(&other_events);
    let sig = |r: &Report, g: &FlowGraph, ev: &[gm_sim::ProbeEvent]| -> Option<(String, SimDuration)> {
        let &w = r.windows.last()?;
        let cp = g.critical_path(ev, w)?;
        Some((cp.signature(), cp.total))
    };
    if let (Some((a, ta)), Some((b, tb))) = (
        sig(&report, &graph, &events),
        sig(&other, &other_graph, &other_events),
    ) {
        println!("\ncritical-path diff (final window):");
        println!(
            "  {:<11} {:>9.2} us  {}",
            mode_name(o.mode),
            ta.as_micros_f64(),
            a
        );
        println!(
            "  {:<11} {:>9.2} us  {}",
            mode_name(other_mode),
            tb.as_micros_f64(),
            b
        );
    }

    if report.metrics.get("probe.dropped_events") > 0 {
        eprintln!(
            "warning: probe ring overflowed, {} events dropped — lineage may be incomplete",
            report.metrics.get("probe.dropped_events")
        );
    }
    if report.metrics.get("series.dropped_points") > 0 {
        eprintln!(
            "warning: series ring overflowed, {} points dropped — gauge summaries may be incomplete",
            report.metrics.get("series.dropped_points")
        );
    }

    if o.check {
        if report.windows.is_empty() {
            failures.push("no measured windows".into());
        }
        if delivered.is_empty() {
            failures.push("no delivered flows".into());
        }
        if failures.is_empty() {
            println!(
                "\nflow check: OK (graph acyclic, {} lineages complete, buckets sum \
                 to completion latency in all {} windows)",
                delivered.len(),
                report.windows.len()
            );
        } else {
            for f in &failures {
                eprintln!("flow check FAILED: {f}");
            }
            std::process::exit(1);
        }
    }
}
