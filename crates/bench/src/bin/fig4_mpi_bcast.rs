//! Figure 4: MPI-level broadcast latency, NIC-based vs host-based, for
//! 4/8/16 ranks across 1 B..16 287 B (the largest eager message).
//!
//! Paper headlines: up to 2.02x for 8 KB over 16 nodes, up to 1.78x for
//! small messages, and a dip at 16 287 B "due to the larger cost of copying
//! the data to their final locations".

use bench::{factor, par_map, us, CliOpts, Sweep, Table};
use gm_mpi::{execute_mpi, BcastImpl, MpiRun};
use gm_sim::SimDuration;
use serde::Serialize;

#[derive(Serialize)]
struct Point {
    ranks: u32,
    size: usize,
    hb_us: f64,
    nb_us: f64,
    improvement: f64,
}

fn main() {
    let opts = CliOpts::parse();
    let rank_counts = [4u32, 8, 16];
    let sweep = Sweep::mpi_sizes();
    let mut points = Vec::new();
    for &n in &rank_counts {
        for size in &sweep {
            points.push((n, size));
        }
    }
    let results: Vec<Point> = par_map(points, |&(n, size)| {
        let measure = |b: BcastImpl| {
            let run = MpiRun::bcast_loop(n, size, b, SimDuration::ZERO, opts.warmup, opts.iters);
            execute_mpi(&run).latency.mean()
        };
        let hb = measure(BcastImpl::HostBinomial);
        let nb = measure(BcastImpl::NicBased);
        Point {
            ranks: n,
            size,
            hb_us: hb,
            nb_us: nb,
            improvement: hb / nb,
        }
    });

    let mut latency = Table::new(
        "Figure 4(a): MPI_Bcast latency (us)",
        &["size", "HB-4", "HB-8", "HB-16", "NB-4", "NB-8", "NB-16"],
    );
    let mut improv = Table::new(
        "Figure 4(b): improvement factor (HB/NB)",
        &["size", "4", "8", "16"],
    );
    for size in &sweep {
        let get = |n: u32| {
            results
                .iter()
                .find(|p| p.ranks == n && p.size == size)
                .expect("point exists")
        };
        latency.row(vec![
            size.to_string(),
            us(get(4).hb_us),
            us(get(8).hb_us),
            us(get(16).hb_us),
            us(get(4).nb_us),
            us(get(8).nb_us),
            us(get(16).nb_us),
        ]);
        improv.row(vec![
            size.to_string(),
            factor(get(4).hb_us, get(4).nb_us),
            factor(get(8).hb_us, get(8).nb_us),
            factor(get(16).hb_us, get(16).nb_us),
        ]);
    }
    latency.print();
    println!();
    improv.print();

    let peak = results
        .iter()
        .filter(|p| p.ranks == 16 && p.size == 8192)
        .map(|p| p.improvement)
        .next()
        .unwrap_or(0.0);
    let small = results
        .iter()
        .filter(|p| p.ranks == 16 && p.size <= 512)
        .map(|p| p.improvement)
        .fold(0.0f64, f64::max);
    let last = results
        .iter()
        .find(|p| p.ranks == 16 && p.size == 16287)
        .map(|p| p.improvement)
        .unwrap_or(0.0);
    println!("\nPaper (16 ranks): 2.02x at 8KB, up to 1.78x small, dip at 16287B.");
    println!("Measured: 8KB {peak:.2}x, small peak {small:.2}x, 16287B {last:.2}x");
    bench::write_json_sweep("fig4_mpi_bcast", &sweep, &results);
}
