//! Extension study (paper future work): NIC-level Allreduce — named
//! explicitly in §7 ("for example, Allreduce and Alltoall broadcast") —
//! against a host-level reduce-then-broadcast over the same binomial tree
//! (the classic MPI implementation).

use std::sync::Mutex;
use std::sync::Arc;

use bench::{par_map, us, CliOpts, Table};
use bytes::Bytes;
use gm::{Cluster, GmParams, HostApp, HostCtx, Notice};
use gm_sim::SimTime;
use myrinet::{Fabric, GroupId, NodeId, PortId, Topology};
use nic_mcast::{McastExt, McastNotice, McastRequest, ReduceOp, SpanningTree, TreeShape};
use serde::Serialize;

const PORT: PortId = PortId(0);
const GID: GroupId = GroupId(1);

/// Steady-state round time measured at node 0 between completion `warmup`
/// and completion `rounds`.
struct Timing {
    t_start: Arc<Mutex<SimTime>>,
    t_end: Arc<Mutex<SimTime>>,
}

// --- NIC-level allreduce loop -----------------------------------------------

struct NicReduceLoop {
    me: NodeId,
    tree: SpanningTree,
    rounds: u32,
    round: u32,
    warmup: u32,
    timing: Arc<Timing>,
}

impl HostApp<McastExt> for NicReduceLoop {
    fn on_start(&mut self, ctx: &mut HostCtx<'_, McastExt>) {
        ctx.provide_recv(PORT, 8);
        ctx.ext(McastRequest::CreateGroup {
            group: GID,
            port: PORT,
            root: self.tree.root(),
            parent: self.tree.parent(self.me),
            children: self.tree.children(self.me).to_vec(),
        });
    }
    fn on_notice(&mut self, n: Notice<McastNotice>, ctx: &mut HostCtx<'_, McastExt>) {
        match n {
            Notice::Ext(McastNotice::GroupReady { .. }) => {
                ctx.ext(McastRequest::AllreduceEnter {
                    group: GID,
                    value: self.me.0 as u64,
                    op: ReduceOp::Sum,
                    tag: 0,
                });
            }
            Notice::Ext(McastNotice::AllreduceDone { result, .. }) => {
                let n_nodes = self.tree.dests().len() as u64 + 1;
                assert_eq!(result, n_nodes * (n_nodes - 1) / 2, "wrong sum");
                self.round += 1;
                if self.me.0 == 0 {
                    if self.round == self.warmup {
                        *self.timing.t_start.lock().expect("shared app state mutex poisoned") = ctx.now();
                    }
                    if self.round == self.rounds {
                        *self.timing.t_end.lock().expect("shared app state mutex poisoned") = ctx.now();
                    }
                }
                if self.round < self.rounds {
                    ctx.ext(McastRequest::AllreduceEnter {
                        group: GID,
                        value: self.me.0 as u64,
                        op: ReduceOp::Sum,
                        tag: self.round as u64,
                    });
                }
            }
            _ => {}
        }
    }
}

// --- Host-level reduce + broadcast loop ---------------------------------------

/// Classic MPI-style allreduce over GM point-to-point: gather partial sums
/// up a binomial tree, root broadcasts the result back down. All host-level.
struct HostReduceLoop {
    me: NodeId,
    tree: SpanningTree,
    rounds: u32,
    round: u32,
    warmup: u32,
    /// Child partials received this round.
    got: u32,
    acc: u64,
    timing: Arc<Timing>,
}

impl HostReduceLoop {
    fn children(&self) -> usize {
        self.tree.children(self.me).len()
    }

    fn maybe_send_up(&mut self, ctx: &mut HostCtx<'_, McastExt>) {
        if self.got as usize != self.children() {
            return;
        }
        match self.tree.parent(self.me) {
            Some(parent) => {
                ctx.send(
                    parent,
                    PORT,
                    PORT,
                    Bytes::copy_from_slice(&self.acc.to_le_bytes()),
                    self.round as u64,
                );
            }
            None => {
                // Root holds the result: broadcast it down.
                self.broadcast_down(ctx, self.acc);
                self.complete(ctx, self.acc);
            }
        }
    }

    fn broadcast_down(&mut self, ctx: &mut HostCtx<'_, McastExt>, result: u64) {
        for &c in self.tree.children(self.me) {
            ctx.send(
                c,
                PORT,
                PORT,
                Bytes::copy_from_slice(&result.to_le_bytes()),
                (1 << 32) | self.round as u64,
            );
        }
    }

    fn complete(&mut self, ctx: &mut HostCtx<'_, McastExt>, result: u64) {
        let n_nodes = self.tree.dests().len() as u64 + 1;
        assert_eq!(result, n_nodes * (n_nodes - 1) / 2);
        self.round += 1;
        if self.me.0 == 0 {
            if self.round == self.warmup {
                *self.timing.t_start.lock().expect("shared app state mutex poisoned") = ctx.now();
            }
            if self.round == self.rounds {
                *self.timing.t_end.lock().expect("shared app state mutex poisoned") = ctx.now();
            }
        }
        if self.round < self.rounds {
            self.begin(ctx);
        }
    }

    fn begin(&mut self, ctx: &mut HostCtx<'_, McastExt>) {
        self.got = 0;
        self.acc = self.me.0 as u64;
        self.maybe_send_up(ctx);
    }
}

impl HostApp<McastExt> for HostReduceLoop {
    fn on_start(&mut self, ctx: &mut HostCtx<'_, McastExt>) {
        ctx.provide_recv(PORT, 16);
        self.got = 0;
        self.acc = self.me.0 as u64;
        self.maybe_send_up(ctx);
    }
    fn on_notice(&mut self, n: Notice<McastNotice>, ctx: &mut HostCtx<'_, McastExt>) {
        if let Notice::Recv { tag, data, .. } = n {
            ctx.provide_recv(PORT, 1);
            let value = u64::from_le_bytes(data[..8].try_into().expect("8 bytes"));
            if tag & (1 << 32) != 0 {
                // Result coming down: forward and complete.
                self.broadcast_down(ctx, value);
                self.complete(ctx, value);
            } else {
                // A child's partial.
                self.acc = self.acc.wrapping_add(value);
                self.got += 1;
                self.maybe_send_up(ctx);
            }
        }
    }
}

fn round_us<A, F>(n: u32, rounds: u32, warmup: u32, mk: F) -> f64
where
    A: HostApp<McastExt> + Send + 'static,
    F: Fn(NodeId, SpanningTree, Arc<Timing>) -> A,
{
    let fabric = Fabric::new(Topology::for_nodes(n), 17);
    let dests: Vec<NodeId> = (1..n).map(NodeId).collect();
    let tree = SpanningTree::build(NodeId(0), &dests, TreeShape::Binomial);
    let timing = Arc::new(Timing {
        t_start: Arc::new(Mutex::new(SimTime::ZERO)),
        t_end: Arc::new(Mutex::new(SimTime::ZERO)),
    });
    let mut cluster = Cluster::new(GmParams::default(), fabric, |_| McastExt::new());
    for i in 0..n {
        cluster.set_app(NodeId(i), Box::new(mk(NodeId(i), tree.clone(), timing.clone())));
    }
    cluster.into_engine().run_to_idle();
    let span = timing.t_end.lock().expect("shared app state mutex poisoned").saturating_since(*timing.t_start.lock().expect("shared app state mutex poisoned"));
    span.as_micros_f64() / (rounds - warmup) as f64
}

#[derive(Serialize)]
struct Point {
    nodes: u32,
    host_us: f64,
    nic_us: f64,
    improvement: f64,
}

fn main() {
    let opts = CliOpts::parse();
    let rounds = opts.warmup + opts.iters;
    let results: Vec<Point> = par_map(vec![4u32, 8, 16, 32, 64], |&n| {
        let host_us = round_us(n, rounds, opts.warmup, |me, tree, timing| HostReduceLoop {
            me,
            tree,
            rounds,
            round: 0,
            warmup: opts.warmup,
            got: 0,
            acc: 0,
            timing,
        });
        let nic_us = round_us(n, rounds, opts.warmup, |me, tree, timing| NicReduceLoop {
            me,
            tree,
            rounds,
            round: 0,
            warmup: opts.warmup,
            timing,
        });
        Point {
            nodes: n,
            host_us,
            nic_us,
            improvement: host_us / nic_us,
        }
    });
    let mut t = Table::new(
        "NIC-level allreduce (sum) vs host reduce+broadcast (per-round time)",
        &["nodes", "host (us)", "NIC (us)", "factor"],
    );
    for p in &results {
        t.row(vec![
            p.nodes.to_string(),
            us(p.host_us),
            us(p.nic_us),
            format!("{:.2}", p.improvement),
        ]);
    }
    t.print();
    println!(
        "\nThe reduction combines inside firmware on the way up and the result\n\
         rides the reliable multicast down: two host wakeups per node per\n\
         round (enter + result) instead of one per tree edge."
    );
    bench::write_json("ext_allreduce", &results);
}
