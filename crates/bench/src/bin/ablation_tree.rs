//! Ablation: spanning-tree shape for the NIC-based multicast (paper §5
//! "The Spanning Tree" / §6.1 fan-out discussion).
//!
//! Compares the size-adaptive shape (`shape_for_size`: postal-optimal for
//! single-packet messages, pipeline k-ary for multi-packet) against fixed
//! binomial, flat and chain trees over 16 nodes.

use bench::{par_map, us, CliOpts, Sweep, Table};
use nic_mcast::{Scenario, TreeShape};
use serde::Serialize;

#[derive(Serialize)]
struct Point {
    size: usize,
    adaptive_us: f64,
    adaptive_root_util: f64,
    binomial_us: f64,
    flat_us: f64,
    flat_root_util: f64,
    chain_us: f64,
}

fn main() {
    let opts = CliOpts::parse();
    let n = 16u32;
    let sweep = Sweep::gm_sizes();
    let results: Vec<Point> = par_map(&sweep, |&size| {
        let m = |shape: TreeShape| {
            let out = Scenario::nic_based(n)
                .size(size)
                .tree(shape)
                .warmup(opts.warmup)
                .iters(opts.iters)
                .run();
            (out.latency.mean(), out.root_link_utilization)
        };
        let (adaptive_us, adaptive_root_util) = m(TreeShape::auto());
        let (binomial_us, _) = m(TreeShape::Binomial);
        let (flat_us, flat_root_util) = m(TreeShape::Flat);
        let (chain_us, _) = m(TreeShape::Chain);
        Point {
            size,
            adaptive_us,
            adaptive_root_util,
            binomial_us,
            flat_us,
            flat_root_util,
            chain_us,
        }
    });

    let mut t = Table::new(
        "Tree-shape ablation: NIC-based multicast latency (us), 16 nodes",
        &[
            "size",
            "adaptive",
            "binomial",
            "flat",
            "chain",
            "adaptive vs binomial",
            "root-link util (adaptive/flat)",
        ],
    );
    for p in &results {
        t.row(vec![
            p.size.to_string(),
            us(p.adaptive_us),
            us(p.binomial_us),
            us(p.flat_us),
            us(p.chain_us),
            format!("{:.2}x", p.binomial_us / p.adaptive_us),
            format!("{:.0}%/{:.0}%", p.adaptive_root_util * 100.0, p.flat_root_util * 100.0),
        ]);
    }
    t.print();
    println!(
        "\nThe adaptive shape tracks or beats the best fixed shape everywhere:\n\
         a moderate-fanout postal tree for small sizes (NIC forwarding hops\n\
         are cheap, so pure flat multisend loses), k-ary pipeline trees for\n\
         multi-packet sizes. Flat trees saturate the root's injection link\n\
         (last column) and chains pay maximal depth."
    );
    bench::write_json_sweep("ablation_tree", &sweep, &results);
}
