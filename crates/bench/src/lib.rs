//! Shared benchmark-harness utilities: parallel parameter sweeps, table
//! rendering, and JSON result emission.
//!
//! Every figure binary follows the same pattern: build a list of parameter
//! points, evaluate each point in its own simulator instance (fanned out
//! across OS threads — simulations are independent and deterministic), then
//! print the same series the paper plots and optionally write a
//! machine-readable JSON file under `results/`.

use std::num::NonZeroUsize;
use std::path::{Path, PathBuf};
use std::thread;
use std::time::Duration;

use serde::Serialize;

pub use nic_mcast::Sweep;

/// Evaluate `f` over `items` in parallel, preserving input order.
///
/// `items` is any `IntoIterator` — a `Vec`, a [`Sweep`], a range. Work is
/// distributed over channels: each worker pulls `(index, item)` pairs
/// from a shared receiver and sends `(index, result)` back, so there is no
/// lock-held section around the evaluation itself. Simulator instances are
/// fully independent, so this is a pure speedup with identical results to a
/// serial run.
pub fn par_map<I, T, R, F>(items: I, f: F) -> Vec<R>
where
    I: IntoIterator<Item = T>,
    T: Send,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_timed(items, f)
        .into_iter()
        .map(|(r, _)| r)
        .collect()
}

/// [`par_map`] that also captures each point's wall-clock evaluation time.
pub fn par_map_timed<I, T, R, F>(items: I, f: F) -> Vec<(R, Duration)>
where
    I: IntoIterator<Item = T>,
    T: Send,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let items: Vec<T> = items.into_iter().collect();
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(4)
        .min(n);
    let (work_tx, work_rx) = crossbeam::channel::unbounded::<(usize, T)>();
    let (res_tx, res_rx) = crossbeam::channel::unbounded::<(usize, R, Duration)>();
    for pair in items.into_iter().enumerate() {
        work_tx
            .send(pair)
            .map_err(|_| ()) // SendError<T> is not Debug without T: Debug
            .expect("work receiver is held open until the scope below drains it");
    }
    drop(work_tx); // workers drain to disconnect
    thread::scope(|s| {
        for _ in 0..threads {
            let rx = work_rx.clone();
            let tx = res_tx.clone();
            let f = &f;
            s.spawn(move || {
                while let Ok((i, item)) = rx.recv() {
                    let started = std::time::Instant::now();
                    let r = f(&item);
                    tx.send((i, r, started.elapsed()))
                        .map_err(|_| ())
                        .expect("result collector outlives every worker in this scope");
                }
            });
        }
        drop(res_tx);
        let mut results: Vec<Option<(R, Duration)>> = (0..n).map(|_| None).collect();
        for (i, r, wall) in res_rx.iter() {
            results[i] = Some((r, wall));
        }
        results
            .into_iter()
            .map(|r| r.expect("every item evaluated"))
            .collect()
    })
}

/// A printable results table.
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with a title and column names.
    pub fn new(title: &str, header: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            header: header.iter().map(ToString::to_string).collect(),
            rows: Vec::new(),
        }
    }

    /// Append one row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "column count mismatch");
        self.rows.push(cells);
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(
            widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1),
        ));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Format a microsecond value for a table cell.
pub fn us(v: f64) -> String {
    format!("{v:.2}")
}

/// Format an improvement factor.
pub fn factor(hb: f64, nb: f64) -> String {
    format!("{:.2}", hb / nb)
}

/// The workspace-root `results/` directory, anchored to this crate's
/// manifest so binaries land their output in the same place regardless of
/// the invoking working directory.
pub fn results_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results")
}

/// Write `contents` to `path` atomically: serialize into a same-directory
/// temporary file, then rename over the target. A crashed or interrupted
/// writer can never leave a truncated JSON file behind, and concurrent
/// figure binaries never observe each other's partial writes.
pub fn atomic_write(path: &Path, contents: &str) -> std::io::Result<()> {
    let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
    std::fs::write(&tmp, contents)?;
    std::fs::rename(&tmp, path).inspect_err(|_| {
        let _ = std::fs::remove_file(&tmp);
    })
}

/// Write `rows` as pretty JSON under `results/<name>.json` (best effort; a
/// failure only prints a warning so the table output still stands alone).
/// Creates `results/` if missing and writes atomically (tmp + rename).
pub fn write_json<T: Serialize>(name: &str, rows: &T) {
    let dir = results_dir();
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("warning: cannot create results/: {e}");
        return;
    }
    let path = dir.join(format!("{name}.json"));
    match serde_json::to_string_pretty(rows) {
        Ok(s) => {
            if let Err(e) = atomic_write(&path, &s) {
                eprintln!("warning: cannot write {}: {e}", path.display());
            } else {
                eprintln!("(results written to {})", path.display());
            }
        }
        Err(e) => eprintln!("warning: cannot serialize results: {e}"),
    }
}

/// Write `rows` under `results/<name>.json` together with the [`Sweep`]
/// that produced them, as `{"sweep": {"label": ..., "points": [...]},
/// "rows": [...]}` — so a results file records its own x-axis.
pub fn write_json_sweep<T: Serialize>(name: &str, sweep: &Sweep, rows: &T) {
    let mut sw = serde_json::Value::Map(vec![]);
    sw.insert("label", serde_json::Value::Str(sweep.label().to_string()));
    sw.insert(
        "points",
        serde_json::Value::Seq(
            sweep
                .iter()
                .map(|p| serde_json::Value::UInt(p as u64))
                .collect(),
        ),
    );
    let mut doc = serde_json::Value::Map(vec![]);
    doc.insert("sweep", sw);
    doc.insert("rows", rows.to_json_value());
    write_json(name, &doc);
}

/// Dispatch-performance recording: each figure binary can report its
/// process-wide engine throughput into `results/perf_baseline.json`, keyed
/// by binary name, merging with records from other binaries. The file is the
/// perf-regression baseline DESIGN.md §6 describes.
pub mod perf {
    use super::{atomic_write, results_dir};

    /// Record this process's aggregate dispatch stats under `binary` in
    /// `results/perf_baseline.json`. `process_wall` should span the whole
    /// sweep (capture an `Instant` at the top of `main`). Best effort: a
    /// failure only prints a warning.
    pub fn record(binary: &str, process_wall: std::time::Duration) {
        let (events, dispatch_wall) = gm_sim::dispatch_stats::snapshot();
        let queue = match gm_sim::default_queue_kind() {
            gm_sim::QueueKind::Wheel => "wheel",
            gm_sim::QueueKind::Heap => "heap",
        };
        let mut entry = serde_json::Value::Map(vec![]);
        entry.insert("events", serde_json::Value::UInt(events));
        entry.insert(
            "dispatch_wall_secs",
            serde_json::Value::Float(dispatch_wall.as_secs_f64()),
        );
        entry.insert(
            "events_per_sec",
            serde_json::Value::Float(gm_sim::dispatch_stats::events_per_sec()),
        );
        entry.insert(
            "process_wall_secs",
            serde_json::Value::Float(process_wall.as_secs_f64()),
        );
        entry.insert("queue", serde_json::Value::Str(queue.to_string()));
        // Record the execution environment so baseline comparisons are
        // honest: a 4-shard run on a single-core host shows window-protocol
        // overhead, not parallel speedup.
        let cores = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
        entry.insert("cores", serde_json::Value::UInt(cores as u64));
        let shards = std::env::var("MYRI_SIM_SHARDS")
            .ok()
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or(1u64);
        entry.insert("shards", serde_json::Value::UInt(shards));

        let dir = results_dir();
        let path = dir.join("perf_baseline.json");
        let mut doc = std::fs::read_to_string(&path)
            .ok()
            .and_then(|s| serde_json::from_str(&s).ok())
            .unwrap_or(serde_json::Value::Map(vec![]));
        if !matches!(doc, serde_json::Value::Map(_)) {
            doc = serde_json::Value::Map(vec![]);
        }
        doc.insert(binary, entry);
        if let Err(e) = std::fs::create_dir_all(&dir) {
            eprintln!("warning: cannot create results/: {e}");
            return;
        }
        match serde_json::to_string_pretty(&doc) {
            Ok(s) => {
                if let Err(e) = atomic_write(&path, &s) {
                    eprintln!("warning: cannot write {}: {e}", path.display());
                } else {
                    eprintln!(
                        "(perf: {events} events at {:.0} ev/s on {queue} queue -> {})",
                        gm_sim::dispatch_stats::events_per_sec(),
                        path.display()
                    );
                }
            }
            Err(e) => eprintln!("warning: cannot serialize perf record: {e}"),
        }
    }
}

/// Parse `--iters N` / `--quick` style flags shared by the figure binaries.
pub struct CliOpts {
    /// Timed iterations per point.
    pub iters: u32,
    /// Warmup iterations per point.
    pub warmup: u32,
    /// Max-over-probes (slower, matches the paper exactly) vs last-probe.
    pub all_probes: bool,
}

impl CliOpts {
    /// Defaults: 100 timed iterations, 10 warmup, deepest-probe only.
    pub fn parse() -> CliOpts {
        let mut o = CliOpts {
            iters: 100,
            warmup: 10,
            all_probes: false,
        };
        let args: Vec<String> = std::env::args().collect();
        let mut i = 1;
        while i < args.len() {
            match args[i].as_str() {
                "--iters" => {
                    i += 1;
                    o.iters = args
                        .get(i)
                        .and_then(|s| s.parse().ok())
                        .expect("--iters needs a number");
                }
                "--warmup" => {
                    i += 1;
                    o.warmup = args
                        .get(i)
                        .and_then(|s| s.parse().ok())
                        .expect("--warmup needs a number");
                }
                "--all-probes" => o.all_probes = true,
                "--quick" => {
                    o.iters = 20;
                    o.warmup = 3;
                }
                other => panic!(
                    "unknown flag {other}; supported: --iters N --warmup N --all-probes --quick"
                ),
            }
            i += 1;
        }
        o
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_order() {
        let out = par_map((0..100).collect::<Vec<i32>>(), |&x: &i32| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_empty() {
        let out: Vec<i32> = par_map(Vec::<i32>::new(), |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn par_map_timed_captures_wall_times() {
        let out = par_map_timed((0..20).collect::<Vec<u64>>(), |&x: &u64| {
            std::thread::sleep(std::time::Duration::from_micros(100));
            x + 1
        });
        assert_eq!(out.len(), 20);
        for (i, (r, wall)) in out.iter().enumerate() {
            assert_eq!(*r, i as u64 + 1);
            assert!(*wall >= std::time::Duration::from_micros(100));
        }
    }

    #[test]
    fn par_map_runs_every_item_once() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let calls = AtomicU64::new(0);
        let out = par_map((0..500).collect::<Vec<u64>>(), |&x: &u64| {
            calls.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(calls.load(Ordering::Relaxed), 500);
        assert_eq!(out, (0..500).collect::<Vec<_>>());
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("demo", &["a", "bbbb"]);
        t.row(vec!["1".into(), "2".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("a  bbbb"));
    }

    #[test]
    fn zero_column_table_renders_without_panicking() {
        let t = Table::new("empty", &[]);
        let s = t.render();
        assert!(s.contains("== empty =="));
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn table_rejects_bad_rows() {
        let mut t = Table::new("demo", &["a"]);
        t.row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn factor_formats() {
        assert_eq!(factor(10.0, 5.0), "2.00");
        assert_eq!(us(1.234), "1.23");
    }
}
