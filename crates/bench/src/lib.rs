//! Shared benchmark-harness utilities: parallel parameter sweeps, table
//! rendering, and JSON result emission.
//!
//! Every figure binary follows the same pattern: build a list of parameter
//! points, evaluate each point in its own simulator instance (fanned out
//! across OS threads — simulations are independent and deterministic), then
//! print the same series the paper plots and optionally write a
//! machine-readable JSON file under `results/`.

use std::num::NonZeroUsize;
use std::path::Path;
use std::sync::Mutex;
use std::thread;

use serde::Serialize;

/// The message-size sweep the paper's GM-level figures use (1 B .. 16 KB).
pub const GM_SIZES: [usize; 15] = [
    1, 4, 16, 64, 128, 256, 512, 1024, 2048, 4096, 6144, 8192, 10240, 12288, 16384,
];

/// The MPI-level sweep tops out at the largest eager message (16 287 B).
pub const MPI_SIZES: [usize; 15] = [
    1, 4, 16, 64, 128, 256, 512, 1024, 2048, 4096, 6144, 8192, 10240, 12288, 16287,
];

/// Evaluate `f` over `items` in parallel, preserving input order.
///
/// Each item runs on its own OS thread (bounded by the machine's
/// parallelism); simulator instances are fully independent, so this is a
/// pure speedup with identical results to a serial run.
pub fn par_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    let results: Mutex<Vec<Option<R>>> = Mutex::new((0..n).map(|_| None).collect());
    let work: Mutex<Vec<(usize, T)>> = Mutex::new(items.into_iter().enumerate().rev().collect());
    let threads = thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(4)
        .min(n.max(1));
    thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let item = work.lock().expect("work queue poisoned").pop();
                match item {
                    Some((i, t)) => {
                        let r = f(&t);
                        results.lock().expect("results poisoned")[i] = Some(r);
                    }
                    None => break,
                }
            });
        }
    });
    results
        .into_inner()
        .expect("results poisoned")
        .into_iter()
        .map(|r| r.expect("every item evaluated"))
        .collect()
}

/// A printable results table.
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with a title and column names.
    pub fn new(title: &str, header: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append one row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "column count mismatch");
        self.rows.push(cells);
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Format a microsecond value for a table cell.
pub fn us(v: f64) -> String {
    format!("{v:.2}")
}

/// Format an improvement factor.
pub fn factor(hb: f64, nb: f64) -> String {
    format!("{:.2}", hb / nb)
}

/// Write `rows` as pretty JSON under `results/<name>.json` (best effort; a
/// failure only prints a warning so the table output still stands alone).
pub fn write_json<T: Serialize>(name: &str, rows: &T) {
    let dir = Path::new("results");
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("warning: cannot create results/: {e}");
        return;
    }
    let path = dir.join(format!("{name}.json"));
    match serde_json::to_string_pretty(rows) {
        Ok(s) => {
            if let Err(e) = std::fs::write(&path, s) {
                eprintln!("warning: cannot write {}: {e}", path.display());
            } else {
                eprintln!("(results written to {})", path.display());
            }
        }
        Err(e) => eprintln!("warning: cannot serialize results: {e}"),
    }
}

/// Parse `--iters N` / `--quick` style flags shared by the figure binaries.
pub struct CliOpts {
    /// Timed iterations per point.
    pub iters: u32,
    /// Warmup iterations per point.
    pub warmup: u32,
    /// Max-over-probes (slower, matches the paper exactly) vs last-probe.
    pub all_probes: bool,
}

impl CliOpts {
    /// Defaults: 100 timed iterations, 10 warmup, deepest-probe only.
    pub fn parse() -> CliOpts {
        let mut o = CliOpts {
            iters: 100,
            warmup: 10,
            all_probes: false,
        };
        let args: Vec<String> = std::env::args().collect();
        let mut i = 1;
        while i < args.len() {
            match args[i].as_str() {
                "--iters" => {
                    i += 1;
                    o.iters = args
                        .get(i)
                        .and_then(|s| s.parse().ok())
                        .expect("--iters needs a number");
                }
                "--warmup" => {
                    i += 1;
                    o.warmup = args
                        .get(i)
                        .and_then(|s| s.parse().ok())
                        .expect("--warmup needs a number");
                }
                "--all-probes" => o.all_probes = true,
                "--quick" => {
                    o.iters = 20;
                    o.warmup = 3;
                }
                other => panic!(
                    "unknown flag {other}; supported: --iters N --warmup N --all-probes --quick"
                ),
            }
            i += 1;
        }
        o
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_order() {
        let out = par_map((0..100).collect(), |&x: &i32| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_empty() {
        let out: Vec<i32> = par_map(Vec::<i32>::new(), |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("demo", &["a", "bbbb"]);
        t.row(vec!["1".into(), "2".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("a  bbbb"));
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn table_rejects_bad_rows() {
        let mut t = Table::new("demo", &["a"]);
        t.row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn factor_formats() {
        assert_eq!(factor(10.0, 5.0), "2.00");
        assert_eq!(us(1.234), "1.23");
    }
}
