//! `myri-mcast` — high-performance, reliable NIC-based multicast over a
//! simulated Myrinet/GM-2 cluster.
//!
//! This is the facade crate of the workspace reproducing Yu, Buntinas &
//! Panda, *"High Performance and Reliable NIC-Based Multicast over
//! Myrinet/GM-2"* (ICPP 2003). It re-exports the layered stack:
//!
//! | layer | crate | what it models |
//! |---|---|---|
//! | [`sim`] | `gm-sim` | deterministic discrete-event engine |
//! | [`net`] | `myrinet` | wormhole Clos fabric, routing, faults |
//! | [`gm`] | `gm` | LANai NIC + host + GM protocol (Go-Back-N) |
//! | [`mcast`] | `nic-mcast` | **the paper**: multisend, NIC forwarding, group ordering, trees |
//! | [`mpi`] | `gm-mpi` | MPICH-GM analogue: p2p, barrier, `MPI_Bcast`, skew programs |
//!
//! # Quickstart
//!
//! ```
//! use myri_mcast::mcast::{execute, McastMode, McastRun, TreeShape};
//!
//! // One multicast of 1 KB from node 0 to 7 destinations, measured over
//! // 10 iterations, with the paper's NIC-based scheme.
//! let mut run = McastRun::new(8, 1024, McastMode::NicBased, TreeShape::Binomial);
//! run.warmup = 2;
//! run.iters = 10;
//! let out = execute(&run);
//! println!("multicast latency: {:.2} us", out.latency.mean());
//! assert!(out.latency.mean() > 0.0);
//! ```
//!
//! See `examples/` for runnable scenarios and `crates/bench/src/bin/` for
//! the binaries that regenerate every figure of the paper.

/// The discrete-event simulation engine.
pub use gm_sim as sim;

/// The Myrinet-2000-like fabric model.
pub use myrinet as net;

/// The GM-2-like protocol and node model.
pub use gm;

/// The paper's NIC-based multicast (core contribution).
pub use nic_mcast as mcast;

/// The MPICH-GM-analogue MPI layer.
pub use gm_mpi as mpi;
