//! `myri-mcast` — high-performance, reliable NIC-based multicast over a
//! simulated Myrinet/GM-2 cluster.
//!
//! This is the facade crate of the workspace reproducing Yu, Buntinas &
//! Panda, *"High Performance and Reliable NIC-Based Multicast over
//! Myrinet/GM-2"* (ICPP 2003). It re-exports the layered stack:
//!
//! | layer | crate | what it models |
//! |---|---|---|
//! | [`sim`] | `gm-sim` | deterministic discrete-event engine |
//! | [`net`] | `myrinet` | wormhole Clos fabric, routing, faults |
//! | [`gm`] | `gm` | LANai NIC + host + GM protocol (Go-Back-N) |
//! | [`mcast`] | `nic-mcast` | **the paper**: multisend, NIC forwarding, group ordering, trees |
//! | [`mpi`] | `gm-mpi` | MPICH-GM analogue: p2p, barrier, `MPI_Bcast`, skew programs |
//!
//! # Quickstart
//!
//! ```
//! use myri_mcast::{ProbeConfig, Scenario, TreeShape};
//!
//! // One multicast of 1 KB from node 0 to 7 destinations, measured over
//! // 10 iterations, with the paper's NIC-based scheme and span probes on.
//! let report = Scenario::nic_based(8)
//!     .size(1024)
//!     .tree(TreeShape::auto())
//!     .warmup(2)
//!     .iters(10)
//!     .probes(ProbeConfig::spans())
//!     .run();
//! println!("multicast latency: {:.2} us", report.latency.mean());
//! assert!(report.latency.mean() > 0.0);
//! assert!(!report.probe.is_empty());
//! ```
//!
//! [`Scenario::build`] validates the configuration and resolves
//! [`TreeShape::auto`] to the size-adapted tree the paper's host library
//! would pick; [`Report`] derefs to the raw run output and additionally
//! carries the counter snapshot ([`Report::metrics`]), the recorded probe
//! events, and — when probes are enabled — a latency [`attribution`]
//! (host/NIC/PCI/serialization/contention/retransmission buckets).
//! Export timelines with [`sim::probe::perfetto::chrome_trace_json`] and
//! open them in Perfetto.
//!
//! See `examples/` for runnable scenarios (start with
//! `examples/quickstart.rs`) and `crates/bench/src/bin/` for the binaries
//! that regenerate every figure of the paper (`trace_explore` dumps a full
//! Perfetto timeline plus the attribution table for one configuration).
//!
//! [`attribution`]: sim::probe::attribution

/// The discrete-event simulation engine.
pub use gm_sim as sim;

/// The Myrinet-2000-like fabric model.
pub use myrinet as net;

/// The GM-2-like protocol and node model.
pub use gm;

/// The paper's NIC-based multicast (core contribution).
pub use nic_mcast as mcast;

/// The MPICH-GM-analogue MPI layer.
pub use gm_mpi as mpi;

// The curated surface: everything a typical experiment needs, importable
// from the crate root.
pub use gm::GmParams;
pub use gm_sim::probe::ProbeConfig;
pub use nic_mcast::{
    BuiltScenario, McastMode, Report, Scenario, ScenarioError, Sweep, TreeShape,
};
